"""Public entry point for the MS-BFS-Graft algorithm, with backend dispatch."""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Optional

from repro.core.engine_interleaved import run_interleaved
from repro.core.engine_numpy import run_numpy
from repro.core.engine_python import run_python
from repro.core.options import (
    DISPATCH_WORK_THRESHOLD,
    MP_DISPATCH_MIN_WORK,
    REORDER_MIN_WORK,
    Deadline,
    DispatchDecision,
    GraftOptions,
)
from repro.errors import ReproError
from repro.graph.csr import BipartiteCSR
from repro.graph.reorder import (
    REORDER_CHOICES,
    ReorderPlan,
    apply_plan,
    plan_reorder,
)
from repro.matching.base import MatchResult, Matching
from repro.parallel.procpool import DEFAULT_WORKERS, run_mp
from repro.telemetry.session import NULL_TELEMETRY
from repro.util.rng import SeedLike

_ENGINES = ("auto", "numpy", "python", "interleaved", "mp")


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware).

    ``sched_getaffinity`` respects cgroup/taskset restrictions — the number
    that matters for a process pool — with ``cpu_count`` as the portable
    fallback.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _choose_reorder(
    graph: BipartiteCSR,
    reorder: str,
    work: int,
    reorder_min_work: int,
    flight=None,
) -> tuple[str, str]:
    """The locality term of the joint dispatch: resolve ``reorder``.

    ``"auto"`` consults the graph-family statistics that
    :mod:`repro.graph.properties` derives (degree skew): a graph whose work
    estimate clears :data:`~repro.core.options.REORDER_MIN_WORK` and whose
    degree distribution is not perfectly regular is relabelled with the
    ``hubsplit`` strategy — the measured winner on every benchmark family
    (hub rows pack contiguously; the elimination-ordered tail collapses the
    repair-phase cascade, see ``docs/performance.md``). When the statistics
    cannot be computed the decision falls back to ``"none"``
    deterministically instead of raising, leaving a note on ``flight``
    (a :class:`repro.telemetry.flight.FlightRecorder`) when one is attached.
    """
    if reorder != "auto":
        return reorder, f"reorder {reorder!r} explicitly requested"
    if work < reorder_min_work:
        return "none", (
            f"work estimate {work} < {reorder_min_work}: below the reorder "
            f"floor, relabelling cannot pay for the layout lookup"
        )
    try:
        deg_x, deg_y = graph.deg_x, graph.deg_y
        regular = bool(
            (deg_x.size == 0 or int(deg_x.max()) == int(deg_x.min()))
            and (deg_y.size == 0 or int(deg_y.max()) == int(deg_y.min()))
        )
        skew = (
            float(deg_x.max()) / float(deg_x.mean())
            if deg_x.size and float(deg_x.mean()) > 0
            else 0.0
        )
    except Exception as exc:  # stats-free CSR: degrade, never raise
        if flight is not None:
            flight.record(
                "reorder_fallback",
                error=f"{type(exc).__name__}: {exc}",
                chosen="none",
            )
        return "none", (
            f"graph statistics unavailable ({type(exc).__name__}); "
            f"deterministic fallback to no reordering"
        )
    if regular:
        return "none", (
            "degree distribution is perfectly regular: relabelling cannot "
            "change claim collisions, ordering left untouched"
        )
    return "hubsplit", (
        f"work estimate {work} >= {reorder_min_work} with degree skew "
        f"{skew:.2f}: hub rows pack contiguously and the elimination-ordered "
        f"tail minimises first-phase claim collisions"
    )


def choose_engine(
    graph: BipartiteCSR,
    *,
    emit_trace: bool = True,
    threshold: int = DISPATCH_WORK_THRESHOLD,
    workers: int = 1,
    mp_threshold: int = MP_DISPATCH_MIN_WORK,
    cores: int | None = None,
    reorder: str = "none",
    reorder_min_work: int = REORDER_MIN_WORK,
    flight=None,
) -> DispatchDecision:
    """Cost-model backend dispatch: pick the python, numpy, or mp engine.

    Mirrors the shape of the paper's direction rule (Algorithm 3 line 9,
    ``|F| < numUnvisitedY / alpha``): work estimates compared against
    calibrated thresholds. The estimate is ``nnz + n_x + n_y`` — the
    per-phase touch count of the level kernels — and the python/numpy
    crossover is the measured point where numpy's per-call overhead stops
    dominating (:data:`~repro.core.options.DISPATCH_WORK_THRESHOLD`).

    The process-parallel backend enters the decision only when the caller
    asked for ``workers >= 2``; it is picked when the pool can actually
    run in parallel (``min(workers, cores) >= 2`` — a pool pinned to one
    core merely adds barrier latency) **and** the work estimate clears
    :data:`~repro.core.options.MP_DISPATCH_MIN_WORK`, the floor below
    which process barriers cost more than the scans they parallelise.
    ``cores`` is injectable for tests; it defaults to the live affinity
    count (:func:`available_cores`).

    Work traces for the simulated machine only exist on the vectorized
    backend, so ``emit_trace=True`` forces numpy regardless of size.

    ``reorder`` makes the decision joint over ordering *and* backend:
    ``"auto"`` resolves through the locality term (:func:`_choose_reorder`
    — work floor, degree-skew statistics, deterministic fallback when the
    statistics are unavailable), a concrete strategy or ``"none"`` passes
    through. The outcome lands in the decision's ``reorder`` /
    ``reorder_reason`` fields.
    """
    work = int(graph.nnz + graph.n_x + graph.n_y)
    if reorder not in REORDER_CHOICES:
        raise ReproError(
            f"unknown reorder {reorder!r}; expected one of {REORDER_CHOICES}"
        )
    chosen_reorder, reorder_reason = _choose_reorder(
        graph, reorder, work, reorder_min_work, flight
    )
    if emit_trace:
        return DispatchDecision(
            engine="numpy",
            reason="work trace requested; only the vectorized backend emits traces",
            work=work,
            threshold=threshold,
            reorder=chosen_reorder,
            reorder_reason=reorder_reason,
        )
    if work < threshold:
        return DispatchDecision(
            engine="python",
            reason=(
                f"work estimate {work} < {threshold}: below the vectorization "
                f"overhead crossover, interpreted loops win"
            ),
            work=work,
            threshold=threshold,
            reorder=chosen_reorder,
            reorder_reason=reorder_reason,
        )
    if workers >= 2:
        cores = available_cores() if cores is None else int(cores)
        effective = min(int(workers), cores)
        if effective >= 2 and work >= mp_threshold:
            return DispatchDecision(
                engine="mp",
                reason=(
                    f"work estimate {work} >= {mp_threshold} with "
                    f"{effective} usable workers (requested {workers}, "
                    f"{cores} cores): per-level scans amortise the process "
                    f"barriers"
                ),
                work=work,
                threshold=threshold,
                reorder=chosen_reorder,
                reorder_reason=reorder_reason,
            )
        if effective < 2:
            decline = (
                f"mp declined: min(workers={workers}, cores={cores}) = "
                f"{effective} < 2, a pool pinned to one core only adds "
                f"barrier latency"
            )
        else:
            decline = (
                f"mp declined: work estimate {work} < {mp_threshold}, "
                f"process barriers would dominate the per-level scans"
            )
        return DispatchDecision(
            engine="numpy",
            reason=(
                f"work estimate {work} >= {threshold}: bulk kernels amortise "
                f"their per-call overhead ({decline})"
            ),
            work=work,
            threshold=threshold,
            reorder=chosen_reorder,
            reorder_reason=reorder_reason,
        )
    return DispatchDecision(
        engine="numpy",
        reason=(
            f"work estimate {work} >= {threshold}: bulk kernels amortise "
            f"their per-call overhead"
        ),
        work=work,
        threshold=threshold,
        reorder=chosen_reorder,
        reorder_reason=reorder_reason,
    )


def ms_bfs_graft(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    alpha: float = 5.0,
    direction_optimizing: bool = True,
    grafting: bool = True,
    direction_strategy: str = "vertex",
    engine: str = "auto",
    record_frontiers: bool = False,
    emit_trace: bool = True,
    check_invariants: bool = False,
    deadline: Deadline | None = None,
    phase_hook: Optional[Callable[[int], None]] = None,
    telemetry=None,
    threads: int = 4,
    seed: SeedLike = 0,
    workers: int | None = None,
    flight_dir: str | None = None,
    mp_min_level_items: int | None = None,
    reorder: str = "none",
    reorder_plan: ReorderPlan | None = None,
    reorder_layout: BipartiteCSR | None = None,
) -> MatchResult:
    """Maximum cardinality bipartite matching by MS-BFS with tree grafting.

    Implements Algorithm 3 of Azad, Buluç & Pothen (IPDPS 2015): phases of
    multi-source alternating BFS with direction optimization, parallel
    augmentation, and tree grafting.

    Parameters
    ----------
    graph:
        The bipartite graph; searches start from unmatched X vertices.
    initial:
        Starting matching (typically Karp-Sipser); the empty matching when
        omitted. Never mutated.
    alpha:
        Threshold for both the top-down/bottom-up switch and the grafting
        profitability test (paper default 5).
    direction_optimizing, grafting:
        Feature flags; disabling both yields plain MS-BFS (Algorithm 2).
    direction_strategy:
        ``"vertex"`` (the paper's |F| vs unvisited count rule) or ``"edge"``
        (Beamer's degree-weighted rule); see
        :class:`~repro.core.options.GraftOptions`.
    engine:
        ``"auto"`` (cost-model dispatch between python, numpy, and — when
        ``workers >= 2`` — mp, see :func:`choose_engine`), ``"numpy"``
        (vectorized, parallel semantics, emits work traces), ``"python"``
        (serial reference), ``"interleaved"`` (simulated concurrent
        execution; honours ``threads`` and ``seed``), or ``"mp"``
        (process-parallel shared-memory pool; honours ``workers``).
        Passing a concrete engine name is the explicit override of the
        dispatcher.
    record_frontiers:
        Record per-level frontier sizes (Fig. 8).
    emit_trace:
        Emit a :class:`~repro.parallel.trace.WorkTrace` (numpy engine only;
        steers ``"auto"`` towards numpy).
    check_invariants:
        Assert forest invariants each phase (slow; for tests).
    deadline:
        Cooperative soft timeout (:class:`~repro.core.options.Deadline`);
        every engine checks it at phase boundaries and raises
        :class:`~repro.errors.DeadlineExceeded` on expiry. The batch
        service (:mod:`repro.service`) uses this to keep stuck jobs from
        hanging a whole suite.
    phase_hook:
        Called with the phase number at each phase start (progress
        reporting / fault injection).
    telemetry:
        Telemetry session (:class:`repro.telemetry.Telemetry`). When set,
        the run emits a span tree (``run`` → ``phase`` → step spans) and
        fills the session's metrics registry (frontier sizes, visited
        claims, grafts vs rebuilds, ...); see ``docs/observability.md``.
    threads, seed:
        Interleaved engine: simulated thread count and schedule seed.
    workers:
        Process count for the mp engine; also the worker term of the
        ``"auto"`` cost model (mp is only considered when ``workers >= 2``
        and at least two cores are actually available). ``None`` means "not
        requested": auto-dispatch never picks mp, while an explicit
        ``engine="mp"`` falls back to the pool default
        (:data:`~repro.parallel.procpool.DEFAULT_WORKERS`). The result is
        bit-identical for every worker count.
    flight_dir:
        Directory for crash flight-recorder dumps (mp engine): the master
        keeps a bounded ring of per-level events and writes it there as
        post-mortem JSONL on worker crashes or deadline expiry. ``None``
        (the default) records nothing.
    mp_min_level_items:
        mp engine only: override the per-level scatter floor
        (:data:`~repro.parallel.procpool.MIN_LEVEL_ITEMS`). Levels with
        fewer work items run on the master; ``0`` forces every level
        through the pool (tests, tracing demos). ``None`` keeps the
        default. The result is identical either way.
    reorder:
        Locality-aware relabelling before the run
        (:mod:`repro.graph.reorder`): ``"none"`` (default), a concrete
        strategy (``"degree"``, ``"bfs"``, ``"hubsplit"``), or ``"auto"``
        — resolved jointly with the backend by :func:`choose_engine`'s
        locality term. The engine runs on the permuted layout; the result
        matching is mapped back to the original vertex ids before being
        returned, so verification and all downstream consumers see the
        caller's numbering. Counters, traces, and frontier logs describe
        the permuted run.
    reorder_plan:
        A precomputed :class:`~repro.graph.reorder.ReorderPlan` (typically
        from the layout cache). When given, ``reorder`` is ignored and no
        planning happens here.
    reorder_layout:
        The already-permuted graph matching ``reorder_plan`` (a cached
        layout). When given alongside ``reorder_plan``, the permutation is
        not re-applied — ``graph`` is then only used for its identity as
        the original numbering.

    Returns
    -------
    MatchResult
        Maximum matching plus counters, step breakdown, and optional trace /
        frontier log.
    """
    options = GraftOptions(
        alpha=alpha,
        direction_optimizing=direction_optimizing,
        grafting=grafting,
        direction_strategy=direction_strategy,
        record_frontiers=record_frontiers,
        emit_trace=emit_trace,
        check_invariants=check_invariants,
        deadline=deadline,
        phase_hook=phase_hook,
        telemetry=telemetry,
        flight_dir=flight_dir,
    )
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    if reorder not in REORDER_CHOICES:
        raise ReproError(
            f"unknown reorder {reorder!r}; expected one of {REORDER_CHOICES}"
        )
    strategy = reorder_plan.strategy if reorder_plan is not None else reorder
    if engine == "auto" or strategy == "auto":
        decision = choose_engine(
            graph,
            emit_trace=emit_trace,
            workers=workers if workers is not None else 1,
            reorder=strategy if reorder_plan is None else "none",
        )
        if engine == "auto":
            engine = decision.engine
        if strategy == "auto":
            strategy = decision.reorder
    plan = reorder_plan
    if plan is None and strategy != "none":
        with tel.step("reorder_plan"):
            plan = plan_reorder(graph, strategy)
        tel.count_reorder_plan(strategy)
    run_graph, run_initial = graph, initial
    if plan is not None:
        if reorder_layout is not None:
            run_graph = reorder_layout
        else:
            with tel.step("reorder_apply"):
                run_graph = apply_plan(graph, plan)
        if initial is not None:
            run_initial = plan.permute_matching(initial)
        tel.count_reorder_run(plan.strategy)

    if engine == "numpy":
        result = run_numpy(run_graph, run_initial, options)
    elif engine == "python":
        result = run_python(run_graph, run_initial, options)
    elif engine == "interleaved":
        result = run_interleaved(
            run_graph, run_initial, options, threads=threads, seed=seed
        )
    elif engine == "mp":
        mp_kwargs = {}
        if mp_min_level_items is not None:
            mp_kwargs["min_level_items"] = int(mp_min_level_items)
        result = run_mp(
            run_graph, run_initial, options,
            workers=max(workers if workers is not None else DEFAULT_WORKERS, 1),
            **mp_kwargs,
        )
    else:
        raise ReproError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if plan is not None:
        with tel.step("reorder_invert"):
            result = replace(result, matching=plan.unpermute_matching(result.matching))
    return result
