"""Public entry point for the MS-BFS-Graft algorithm."""

from __future__ import annotations

from repro.core.engine_interleaved import run_interleaved
from repro.core.engine_numpy import run_numpy
from repro.core.engine_python import run_python
from repro.core.options import GraftOptions
from repro.errors import ReproError
from repro.graph.csr import BipartiteCSR
from repro.matching.base import MatchResult, Matching
from repro.util.rng import SeedLike

_ENGINES = ("numpy", "python", "interleaved")


def ms_bfs_graft(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    alpha: float = 5.0,
    direction_optimizing: bool = True,
    grafting: bool = True,
    direction_strategy: str = "vertex",
    engine: str = "numpy",
    record_frontiers: bool = False,
    emit_trace: bool = True,
    check_invariants: bool = False,
    threads: int = 4,
    seed: SeedLike = 0,
) -> MatchResult:
    """Maximum cardinality bipartite matching by MS-BFS with tree grafting.

    Implements Algorithm 3 of Azad, Buluç & Pothen (IPDPS 2015): phases of
    multi-source alternating BFS with direction optimization, parallel
    augmentation, and tree grafting.

    Parameters
    ----------
    graph:
        The bipartite graph; searches start from unmatched X vertices.
    initial:
        Starting matching (typically Karp-Sipser); the empty matching when
        omitted. Never mutated.
    alpha:
        Threshold for both the top-down/bottom-up switch and the grafting
        profitability test (paper default 5).
    direction_optimizing, grafting:
        Feature flags; disabling both yields plain MS-BFS (Algorithm 2).
    direction_strategy:
        ``"vertex"`` (the paper's |F| vs unvisited count rule) or ``"edge"``
        (Beamer's degree-weighted rule); see
        :class:`~repro.core.options.GraftOptions`.
    engine:
        ``"numpy"`` (vectorized, parallel semantics, emits work traces),
        ``"python"`` (serial reference), or ``"interleaved"`` (simulated
        concurrent execution; honours ``threads`` and ``seed``).
    record_frontiers:
        Record per-level frontier sizes (Fig. 8).
    emit_trace:
        Emit a :class:`~repro.parallel.trace.WorkTrace` (numpy engine only).
    check_invariants:
        Assert forest invariants each phase (slow; for tests).
    threads, seed:
        Interleaved engine: simulated thread count and schedule seed.

    Returns
    -------
    MatchResult
        Maximum matching plus counters, step breakdown, and optional trace /
        frontier log.
    """
    options = GraftOptions(
        alpha=alpha,
        direction_optimizing=direction_optimizing,
        grafting=grafting,
        direction_strategy=direction_strategy,
        record_frontiers=record_frontiers,
        emit_trace=emit_trace,
        check_invariants=check_invariants,
    )
    if engine == "numpy":
        return run_numpy(graph, initial, options)
    if engine == "python":
        return run_python(graph, initial, options)
    if engine == "interleaved":
        return run_interleaved(graph, initial, options, threads=threads, seed=seed)
    raise ReproError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
