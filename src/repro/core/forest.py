"""Alternating-forest state for the MS-BFS-Graft algorithm.

Exactly the pointer arrays of the paper's Section III-B:

* ``visited[y]`` — y is part of some current tree (ensures
  vertex-disjointness);
* ``parent[y]`` — the X vertex that discovered y;
* ``root_x[x]`` / ``root_y[y]`` — root (an unmatched X vertex) of the tree
  containing the vertex, -1 if in no tree;
* ``leaf[x]`` — for a tree root x: the unmatched Y leaf of its augmenting
  path, or -1 while the tree is *active*. A tree whose root has
  ``leaf != -1`` is *renewable*.

Matched X vertices are entered through their mates, so they need no visited
flag or parent pointer (their tree path continues through ``mate``).

On top of the paper's arrays the state maintains the hot-path bookkeeping
that keeps per-level work proportional to *remaining* work instead of graph
size:

* ``visited_words`` — a bit-packed uint64 mirror of ``visited`` (see
  :mod:`repro.core.bitset`) that the vectorized kernels test against;
* ``candidates_y`` — a phase-persistent superset of the unvisited Y
  vertices (minus isolated ones once :meth:`attach_degrees` ran),
  compacted lazily by :meth:`unvisited_candidates` so a bottom-up level
  costs O(candidates), never O(n_y);
* ``seeds_x`` — the incrementally-shrunk unmatched-X seed list behind
  ``rebuild_from_unmatched`` (a matching only grows inside one run, so the
  seed list only loses members and never needs a rescan);
* ``unvisited_deg`` — running sum of unvisited-Y degrees, giving the
  "edge" direction strategy its threshold in O(1) instead of an O(n_y)
  masked sum per level (attach the degree vector with
  :meth:`attach_degrees` to enable it).

All visited-flag transitions must go through :meth:`mark_visited` /
:meth:`clear_visited` (bulk) or :meth:`count_visit` (the interleaved
engine's per-element claims) so the mirror, candidate list, and counters
stay consistent with the byte array.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitset import bitset_clear, bitset_set, bitset_words
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.matching.base import UNMATCHED, Matching
from repro.parallel.shared import WRITE


class ForestState:
    """Mutable forest arrays plus the unvisited-Y bookkeeping for direction
    optimization and incremental candidate tracking.

    ``observer`` optionally holds a
    :class:`~repro.parallel.shared.BulkAccessObserver`; when set, the
    vectorized kernels report their bulk shared-array accesses to it so the
    dynamic race detector can audit the numpy fast path (including the
    packed-word updates, reported as atomic fetch-or/fetch-and).
    """

    __slots__ = (
        "n_x", "n_y", "visited", "parent", "root_x", "root_y", "leaf",
        "num_unvisited_y", "observer", "visited_words", "candidates_y",
        "num_candidates", "seeds_x", "unvisited_deg", "last_scan_cost",
        "tree_x_parts", "tree_y_parts", "_deg_y",
    )

    def __init__(self, n_x: int, n_y: int) -> None:
        self.n_x = n_x
        self.n_y = n_y
        self.visited = np.zeros(n_y, dtype=np.uint8)
        self.parent = np.full(n_y, UNMATCHED, dtype=INDEX_DTYPE)
        self.root_x = np.full(n_x, UNMATCHED, dtype=INDEX_DTYPE)
        self.root_y = np.full(n_y, UNMATCHED, dtype=INDEX_DTYPE)
        self.leaf = np.full(n_x, UNMATCHED, dtype=INDEX_DTYPE)
        self.num_unvisited_y = n_y
        self.observer = None
        self.visited_words = bitset_words(n_y)
        self.candidates_y = np.arange(n_y, dtype=INDEX_DTYPE)
        self.num_candidates = n_y
        self.seeds_x = None
        self.unvisited_deg = 0
        self.last_scan_cost = 0
        # Incremental tree membership for the numpy engine's GRAFT pass:
        # every array of vertices that entered a tree since the last
        # partition (claim winners on the Y side; pulled-in mates and
        # rebuild seeds on the X side). Only meaningful for flows that
        # route all forest updates through the vectorized kernels — see
        # kernels.graft_partition(tracked=True).
        self.tree_x_parts: list[np.ndarray] = []
        self.tree_y_parts: list[np.ndarray] = []
        self._deg_y = None

    @classmethod
    def for_graph(cls, graph: BipartiteCSR) -> "ForestState":
        return cls(graph.n_x, graph.n_y)

    # ------------------------------------------------------------------ #
    # incremental visited / candidate bookkeeping
    # ------------------------------------------------------------------ #

    def attach_degrees(self, deg_y: np.ndarray) -> None:
        """Enable O(1) unvisited-degree tracking for the edge strategy.

        Must be called while *all* Y vertices are unvisited (engine setup);
        from then on :meth:`mark_visited`/:meth:`clear_visited`/
        :meth:`count_visit` keep ``unvisited_deg`` exact.

        Also drops isolated (degree-0) Y vertices from the candidate list —
        they have no incident edge, so no claim can ever reach them, yet on
        skewed inputs they are a third of the side and would be re-gathered
        by every bottom-up level. ``num_unvisited_y`` still counts them
        (the direction heuristic and termination check are unchanged).
        """
        self._deg_y = deg_y
        self.unvisited_deg = int(deg_y.sum()) - int(deg_y[self.visited != 0].sum())
        self._compact_candidates()
        cand = self.candidates_y
        self.candidates_y = cand[deg_y[cand] > 0]
        self.num_candidates = int(self.candidates_y.shape[0])

    def mark_visited(self, rows: np.ndarray) -> None:
        """Flag ``rows`` (all currently unvisited) as visited, updating the
        packed mirror and the direction-strategy counters."""
        n = int(rows.shape[0])
        if n == 0:
            return
        self.visited[rows] = 1
        bitset_set(self.visited_words, rows)
        if self.observer is not None:
            # Packed-word mirror of the claim: fetch-or on shared words
            # (distinct vertices may share a word, hence atomic).
            self.observer.record_bulk("visited_words", rows >> 6, WRITE, True, rows)
        self.num_unvisited_y -= n
        if self._deg_y is not None:
            d = self._deg_y[rows]
            self.unvisited_deg -= int(d.sum())
            self.num_candidates -= int(np.count_nonzero(d))
        else:
            self.num_candidates -= n

    def clear_visited(self, rows: np.ndarray) -> None:
        """Un-flag ``rows`` (all currently visited) and put them back in the
        candidate list (graft recycling / destroy-and-rebuild).

        Compaction happens *before* the append: any stale copy of a recycled
        row still in ``candidates_y`` is dropped while its flag is still
        set, so the list never holds duplicates.
        """
        n = int(rows.shape[0])
        if n == 0:
            return
        self._compact_candidates()
        back = np.asarray(rows, dtype=INDEX_DTYPE)
        if self._deg_y is not None:
            d = self._deg_y[back]
            self.unvisited_deg += int(d.sum())
            back = back[d > 0]
        self.candidates_y = np.concatenate([self.candidates_y, back])
        self.num_candidates += int(back.shape[0])
        self.visited[rows] = 0
        bitset_clear(self.visited_words, rows)
        if self.observer is not None:
            self.observer.record_bulk("visited_words", rows >> 6, WRITE, True, rows)
        self.num_unvisited_y += n

    def count_visit(self, y: int) -> None:
        """Per-element counter update for the interleaved engine's claims.

        The simulated item programs set the ``visited`` byte themselves
        (through the observable CAS wrapper); this keeps the direction
        counters in step. The packed mirror is *not* updated here — the
        interleaved engine never reads it, and candidate compaction filters
        against the byte array, so the lazy superset invariant holds.
        """
        self.num_unvisited_y -= 1
        if self._deg_y is not None:
            d = int(self._deg_y[y])
            self.unvisited_deg -= d
            if d:
                self.num_candidates -= 1
        else:
            self.num_candidates -= 1

    def _compact_candidates(self) -> None:
        cand = self.candidates_y
        if cand.shape[0] != self.num_candidates:
            # Superset invariant: equal length implies the sets are equal,
            # so the filter only runs when something was claimed since the
            # last compaction.
            self.candidates_y = cand[self.visited[cand] == 0]

    def unvisited_candidates(self) -> np.ndarray:
        """The unvisited Y vertices, in O(candidates) — never O(n_y).

        Compacts the lazy candidate list against the visited flags and
        returns it. ``last_scan_cost`` records the pre-compaction length
        (the work actually done), which the regression tests bound by
        remaining-unvisited + recycled-since instead of ``n_y``.
        """
        self.last_scan_cost = int(self.candidates_y.shape[0])
        self._compact_candidates()
        return self.candidates_y

    def refresh_seeds(self, matching: Matching) -> np.ndarray:
        """Current unmatched X vertices, shrinking the persistent seed list.

        First call scans ``mate_x`` once; later calls filter the previous
        seeds in O(seeds). Sound within one run because augmentation only
        ever matches vertices — a matched X never becomes unmatched again.
        """
        if self.seeds_x is None:
            self.seeds_x = matching.unmatched_x()
        else:
            self.seeds_x = self.seeds_x[
                matching.mate_x[self.seeds_x] == UNMATCHED
            ]
        return self.seeds_x

    # ------------------------------------------------------------------ #
    # set queries (the GRAFT step's "Statistics" pass, Alg. 7 lines 2-4)
    # ------------------------------------------------------------------ #

    def active_x_mask(self) -> np.ndarray:
        """X vertices in an active tree: root set and root's leaf unset."""
        safe = np.where(self.root_x >= 0, self.root_x, 0)
        return (self.root_x != UNMATCHED) & (self.leaf[safe] == UNMATCHED)

    def renewable_x_mask(self) -> np.ndarray:
        safe = np.where(self.root_x >= 0, self.root_x, 0)
        return (self.root_x != UNMATCHED) & (self.leaf[safe] != UNMATCHED)

    def active_y_mask(self) -> np.ndarray:
        safe = np.where(self.root_y >= 0, self.root_y, 0)
        return (self.root_y != UNMATCHED) & (self.leaf[safe] == UNMATCHED)

    def renewable_y_mask(self) -> np.ndarray:
        safe = np.where(self.root_y >= 0, self.root_y, 0)
        return (self.root_y != UNMATCHED) & (self.leaf[safe] != UNMATCHED)

    # ------------------------------------------------------------------ #
    # invariant checking (used by tests and the interleaved-race suite)
    # ------------------------------------------------------------------ #

    def check_invariants(self, graph: BipartiteCSR, matching: Matching) -> None:
        """Assert the structural invariants of an alternating forest.

        * every visited y has a parent that is a graph neighbour and a root;
        * trees are vertex-disjoint (each y has exactly one parent edge —
          implied by the single parent array, checked via root consistency);
        * parent chains alternate: ``parent[y]`` is either the tree root
          (unmatched) or a matched X vertex whose mate is also in the tree
          with the same root;
        * a root's ``leaf`` points to a y in its own tree.
        """
        visited_idx = np.flatnonzero(self.visited != 0)
        for y in visited_idx:
            y = int(y)
            x = int(self.parent[y])
            assert x != UNMATCHED, f"visited y={y} has no parent"
            assert graph.has_edge(x, y), f"parent edge ({x}, {y}) not in graph"
            assert self.root_y[y] != UNMATCHED, f"visited y={y} has no root"
            assert self.root_x[x] == self.root_y[y], (
                f"parent x={x} root {self.root_x[x]} != y={y} root {self.root_y[y]}"
            )
            root = int(self.root_y[y])
            assert matching.mate_x[root] == UNMATCHED or self.leaf[root] != UNMATCHED, (
                f"tree root {root} is matched but its tree is not renewable"
            )
        roots = np.flatnonzero((self.root_x == np.arange(self.n_x)) & (self.leaf != UNMATCHED))
        for x0 in roots:
            y0 = int(self.leaf[x0])
            if self.visited[y0]:
                assert self.root_y[y0] == x0, (
                    f"leaf[{x0}]={y0} lies in tree {self.root_y[y0]}"
                )

    def alternating_path_to_root(self, matching: Matching, y0: int) -> list[int]:
        """The tree path from y0 up to its root, as ``[y0, x1, y1, ..., root]``.

        Follows parent then mate pointers; used by augmentation and tests.
        """
        path = [int(y0)]
        y = int(y0)
        while True:
            x = int(self.parent[y])
            path.append(x)
            nxt = int(matching.mate_x[x])
            if nxt == UNMATCHED:
                return path
            path.append(nxt)
            y = nxt
