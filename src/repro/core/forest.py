"""Alternating-forest state for the MS-BFS-Graft algorithm.

Exactly the pointer arrays of the paper's Section III-B:

* ``visited[y]`` — y is part of some current tree (ensures
  vertex-disjointness);
* ``parent[y]`` — the X vertex that discovered y;
* ``root_x[x]`` / ``root_y[y]`` — root (an unmatched X vertex) of the tree
  containing the vertex, -1 if in no tree;
* ``leaf[x]`` — for a tree root x: the unmatched Y leaf of its augmenting
  path, or -1 while the tree is *active*. A tree whose root has
  ``leaf != -1`` is *renewable*.

Matched X vertices are entered through their mates, so they need no visited
flag or parent pointer (their tree path continues through ``mate``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.matching.base import UNMATCHED, Matching


class ForestState:
    """Mutable forest arrays plus the unvisited-Y counter for direction
    optimization.

    ``observer`` optionally holds a
    :class:`~repro.parallel.shared.BulkAccessObserver`; when set, the
    vectorized kernels report their bulk shared-array accesses to it so the
    dynamic race detector can audit the numpy fast path.
    """

    __slots__ = (
        "n_x", "n_y", "visited", "parent", "root_x", "root_y", "leaf",
        "num_unvisited_y", "observer",
    )

    def __init__(self, n_x: int, n_y: int) -> None:
        self.n_x = n_x
        self.n_y = n_y
        self.visited = np.zeros(n_y, dtype=np.uint8)
        self.parent = np.full(n_y, UNMATCHED, dtype=INDEX_DTYPE)
        self.root_x = np.full(n_x, UNMATCHED, dtype=INDEX_DTYPE)
        self.root_y = np.full(n_y, UNMATCHED, dtype=INDEX_DTYPE)
        self.leaf = np.full(n_x, UNMATCHED, dtype=INDEX_DTYPE)
        self.num_unvisited_y = n_y
        self.observer = None

    @classmethod
    def for_graph(cls, graph: BipartiteCSR) -> "ForestState":
        return cls(graph.n_x, graph.n_y)

    # ------------------------------------------------------------------ #
    # set queries (the GRAFT step's "Statistics" pass, Alg. 7 lines 2-4)
    # ------------------------------------------------------------------ #

    def active_x_mask(self) -> np.ndarray:
        """X vertices in an active tree: root set and root's leaf unset."""
        safe = np.where(self.root_x >= 0, self.root_x, 0)
        return (self.root_x != UNMATCHED) & (self.leaf[safe] == UNMATCHED)

    def renewable_x_mask(self) -> np.ndarray:
        safe = np.where(self.root_x >= 0, self.root_x, 0)
        return (self.root_x != UNMATCHED) & (self.leaf[safe] != UNMATCHED)

    def active_y_mask(self) -> np.ndarray:
        safe = np.where(self.root_y >= 0, self.root_y, 0)
        return (self.root_y != UNMATCHED) & (self.leaf[safe] == UNMATCHED)

    def renewable_y_mask(self) -> np.ndarray:
        safe = np.where(self.root_y >= 0, self.root_y, 0)
        return (self.root_y != UNMATCHED) & (self.leaf[safe] != UNMATCHED)

    # ------------------------------------------------------------------ #
    # invariant checking (used by tests and the interleaved-race suite)
    # ------------------------------------------------------------------ #

    def check_invariants(self, graph: BipartiteCSR, matching: Matching) -> None:
        """Assert the structural invariants of an alternating forest.

        * every visited y has a parent that is a graph neighbour and a root;
        * trees are vertex-disjoint (each y has exactly one parent edge —
          implied by the single parent array, checked via root consistency);
        * parent chains alternate: ``parent[y]`` is either the tree root
          (unmatched) or a matched X vertex whose mate is also in the tree
          with the same root;
        * a root's ``leaf`` points to a y in its own tree.
        """
        visited_idx = np.flatnonzero(self.visited != 0)
        for y in visited_idx:
            y = int(y)
            x = int(self.parent[y])
            assert x != UNMATCHED, f"visited y={y} has no parent"
            assert graph.has_edge(x, y), f"parent edge ({x}, {y}) not in graph"
            assert self.root_y[y] != UNMATCHED, f"visited y={y} has no root"
            assert self.root_x[x] == self.root_y[y], (
                f"parent x={x} root {self.root_x[x]} != y={y} root {self.root_y[y]}"
            )
            root = int(self.root_y[y])
            assert matching.mate_x[root] == UNMATCHED or self.leaf[root] != UNMATCHED, (
                f"tree root {root} is matched but its tree is not renewable"
            )
        roots = np.flatnonzero((self.root_x == np.arange(self.n_x)) & (self.leaf != UNMATCHED))
        for x0 in roots:
            y0 = int(self.leaf[x0])
            if self.visited[y0]:
                assert self.root_y[y0] == x0, (
                    f"leaf[{x0}]={y0} lies in tree {self.root_y[y0]}"
                )

    def alternating_path_to_root(self, matching: Matching, y0: int) -> list[int]:
        """The tree path from y0 up to its root, as ``[y0, x1, y1, ..., root]``.

        Follows parent then mate pointers; used by augmentation and tests.
        """
        path = [int(y0)]
        y = int(y0)
        while True:
            x = int(self.parent[y])
            path.append(x)
            nxt = int(matching.mate_x[x])
            if nxt == UNMATCHED:
                return path
            path.append(nxt)
            y = nxt
