"""Vectorized (numpy) level kernels for MS-BFS-Graft.

These kernels implement one barrier-delimited parallel region each, with the
*parallel* semantics of the paper's OpenMP implementation: every work item
of a level acts on the level-start state; conflicting ``visited`` claims are
resolved to a single winner (the serialisation real atomics would impose —
we pick the first claimant in frontier order, deterministically); multiple
augmenting-path endpoints in one tree are the paper's benign ``leaf`` race —
a single winner is kept.

Each kernel returns the next frontier plus the statistics the work trace
needs (per-item costs, atomic counts, traversed edges).

Implementation notes on the fast path:

* Claim resolution is a fused O(k) scatter (:func:`first_claim`) instead of
  an O(k log k) sort — the winner for a contested Y vertex is the first
  claimant in frontier order, which is both deterministic and exactly the
  serialisation a first-come-first-served CAS would impose.
* Kernels accept an optional :class:`KernelWorkspace` so the per-level
  scratch arrays are allocated once per run, not once per level.
* Per-level work is proportional to the level, never to the graph: tree
  membership is derived per frontier vertex / per gathered edge instead of
  via the O(n_x) ``active_x_mask`` gather, visited pre-checks test the
  bit-packed ``visited_words`` mirror (:mod:`repro.core.bitset`,
  re-exported here), and all visited transitions go through
  ``ForestState.mark_visited``/``clear_visited`` so the incremental
  candidate list and direction counters stay exact.
* Augmentation advances all discovered augmenting paths in lockstep
  (:func:`augment_all`): the paths are vertex-disjoint, so the per-step
  scatter writes never conflict — the same argument that lets the paper
  flip them in parallel.
* When a :class:`~repro.parallel.shared.BulkAccessObserver` is attached to
  the :class:`~repro.core.forest.ForestState` (``state.observer``), every
  kernel reports its bulk reads/writes of shared arrays, so the dynamic
  race detector (``repro-match racecheck --engine numpy``) sees the fast
  path's memory footprint instead of going blind on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitset import (  # noqa: F401  (re-exported kernel helpers)
    bitset_clear,
    bitset_count,
    bitset_set,
    bitset_test,
    bitset_words,
)
from repro.core.forest import ForestState
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.matching.base import UNMATCHED, Matching
from repro.parallel.shared import READ, WRITE


def _active_tree_mask(state: ForestState, vertices: np.ndarray) -> np.ndarray:
    """Active-tree membership of ``vertices`` in O(len(vertices)).

    Same predicate as ``state.active_x_mask()`` but computed only for the
    queried vertices — the full-mask gather is O(n_x) per call, which used
    to dominate shallow levels on large graphs.
    """
    rx = state.root_x[vertices]
    safe = np.where(rx >= 0, rx, 0)
    return (rx != UNMATCHED) & (state.leaf[safe] == UNMATCHED)


class KernelWorkspace:
    """Reusable per-run scratch buffers for the level kernels.

    ``slot_x`` / ``slot_y`` back the :func:`first_claim` scatter; their
    contents are meaningless between calls (every slot that is read was
    written earlier in the same call), so no per-level clearing is needed.
    ``iota`` is a precomputed ``arange`` sliced instead of re-filled on
    every segment gather. ``want_costs`` lets the engine skip per-item
    cost vectors when no work trace is being emitted.
    """

    __slots__ = ("slot_x", "slot_y", "iota", "want_costs")

    def __init__(self, n_x: int, n_y: int, max_edges: int = 0) -> None:
        self.slot_x = np.empty(n_x, dtype=np.int64)
        self.slot_y = np.empty(n_y, dtype=np.int64)
        self.iota = np.arange(max(n_x, n_y, max_edges), dtype=np.int64)
        self.want_costs = True

    @classmethod
    def for_graph(cls, graph: BipartiteCSR) -> "KernelWorkspace":
        return cls(graph.n_x, graph.n_y, graph.nnz)

    def order(self, k: int) -> np.ndarray:
        """``arange(k)`` as a view of the precomputed buffer (grown on
        demand for callers whose index range exceeds the graph's)."""
        if k > self.iota.shape[0]:
            self.iota = np.arange(max(k, 2 * self.iota.shape[0]), dtype=np.int64)
        return self.iota[:k]


def first_claim(
    targets: np.ndarray, slot: np.ndarray, ws: KernelWorkspace | None = None
) -> np.ndarray:
    """First-writer-wins claim resolution in O(len(targets)).

    Returns a boolean mask selecting, for every distinct value in
    ``targets``, its *first* occurrence — the claimant that would win a
    first-come-first-served CAS. ``slot`` is an int64 scratch array
    indexable by every target value; only the slots touched here are read,
    so it never needs clearing.
    """
    k = targets.shape[0]
    order = ws.order(k) if ws is not None else np.arange(k, dtype=np.int64)
    # Reversed scatter: the last write per slot is the *first* occurrence.
    slot[targets[::-1]] = order[::-1]
    return slot[targets] == order


@dataclass
class LevelStats:
    """What one kernel invocation did (work-trace + counter input)."""

    next_frontier: np.ndarray
    item_costs: np.ndarray
    edges: int
    claims: int
    """Successful visited-flag claims (atomic CAS wins)."""
    attempts: int
    """Total claim attempts (wins + losses); losses model CAS contention."""
    endpoints: int
    """Unmatched Y vertices reached (augmenting paths discovered)."""


_NO_COSTS = np.empty(0)
"""Shared placeholder when the caller is not emitting a work trace."""


def _empty_stats() -> LevelStats:
    return LevelStats(
        next_frontier=np.empty(0, dtype=INDEX_DTYPE),
        item_costs=np.empty(0),
        edges=0,
        claims=0,
        attempts=0,
        endpoints=0,
    )


def _segment_slots(
    base: np.ndarray, deg: np.ndarray, ws: KernelWorkspace | None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Flatten per-row slices ``[base[r], base[r]+deg[r])`` into one index
    vector. Returns ``(slot, offsets, total)``."""
    offsets = np.empty(deg.shape[0] + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(deg, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets, 0
    # Flat position k belongs to row r with offsets[r] <= k < offsets[r+1]
    # and maps to base[r] + (k - offsets[r]): a per-row constant shift of k,
    # so one repeat plus a precomputed arange covers the whole gather.
    iota = ws.order(total) if ws is not None else np.arange(total, dtype=np.int64)
    slot = iota + np.repeat(base - offsets[:-1], deg)
    return slot, offsets, total


def _gather_segments(
    ptr: np.ndarray,
    adj: np.ndarray,
    rows: np.ndarray,
    need_sources: bool = True,
    ws: KernelWorkspace | None = None,
):
    """Concatenate the adjacency slices of ``rows``.

    Returns ``(sources, targets, offsets)`` where ``sources[k]`` is the row
    owning edge slot ``k``, ``targets[k]`` its neighbour, and ``offsets``
    the per-row segment boundaries (len(rows)+1). ``sources`` is ``None``
    when ``need_sources`` is false — bottom-up only needs it for the race
    observer, and the extra O(edges) ``repeat`` is measurable.
    """
    deg = ptr[rows + 1] - ptr[rows]
    slot, offsets, total = _segment_slots(ptr[rows], deg, ws)
    if total == 0:
        empty = np.empty(0, dtype=INDEX_DTYPE)
        return (empty if need_sources else None), empty, offsets
    sources = np.repeat(rows, deg) if need_sources else None
    return sources, adj[slot], offsets


def topdown_level(
    graph: BipartiteCSR,
    state: ForestState,
    matching: Matching,
    frontier: np.ndarray,
    workspace: KernelWorkspace | None = None,
) -> LevelStats:
    """Algorithm 4, one level, parallel semantics.

    Every active-tree frontier vertex scans its full adjacency (as the
    concurrent version does — no serial early-break); unvisited targets are
    claimed first-writer-wins.
    """
    ws = workspace if workspace is not None else KernelWorkspace.for_graph(graph)
    obs = state.observer
    frontier = np.asarray(frontier, dtype=INDEX_DTYPE)
    if frontier.size:
        frontier = frontier[_active_tree_mask(state, frontier)]
    if frontier.size == 0:
        return _empty_stats()
    if obs is not None:
        obs.begin_region("topdown")
    src, dst, offsets = _gather_segments(graph.x_ptr, graph.x_adj, frontier, ws=ws)
    edges = int(dst.shape[0])
    if ws.want_costs:
        item_costs = np.diff(offsets).astype(np.float64) + 1.0
    else:
        item_costs = _NO_COSTS
    # Pre-check on the visited bytes: at this scale the plain byte gather
    # beats bit extraction from the packed words (see docs/performance.md);
    # the words stay the claim mirror that mark_visited maintains.
    unvis = state.visited[dst] == 0
    src_u = src[unvis]
    dst_u = dst[unvis]
    attempts = int(dst_u.shape[0])
    if attempts:
        # First occurrence per target = the winning atomic claim.
        win = first_claim(dst_u, ws.slot_y, ws)
        winners = dst_u[win]
        claim_src = src_u[win]
        if obs is not None:
            # CAS on visited: winners write atomically, losers observe the
            # set flag (the failing read half of the CAS).
            obs.record_bulk("visited", winners, WRITE, True, claim_src)
            obs.record_bulk("visited", dst_u[~win], READ, True, src_u[~win])
    else:
        winners = np.empty(0, dtype=INDEX_DTYPE)
        claim_src = np.empty(0, dtype=INDEX_DTYPE)
    return _apply_claims(
        state, matching, winners, claim_src, claim_src, item_costs, edges, attempts, ws
    )


def bottomup_level(
    graph: BipartiteCSR,
    state: ForestState,
    matching: Matching,
    rows: np.ndarray,
    workspace: KernelWorkspace | None = None,
    region: str = "bottomup",
) -> LevelStats:
    """Algorithm 6 over row set ``rows`` (regular bottom-up or grafting).

    Each row scans its neighbours up to (and including) its first
    active-tree neighbour, based on the level-start active state. No atomics
    are needed: each row is owned by a single thread (Section III-B).
    """
    ws = workspace if workspace is not None else KernelWorkspace.for_graph(graph)
    obs = state.observer
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return _empty_stats()
    if obs is not None:
        obs.begin_region(region)
    ptr, adj = graph.y_ptr, graph.y_adj
    row_start = ptr[rows]
    deg_all = ptr[rows + 1] - row_start
    total_deg = int(deg_all.sum())
    # Tree membership is frozen at level start (the paper's level-synchronous
    # semantics), so the mask can be built once up front. The full O(n_x)
    # build amortizes over every chunk when the edge volume is large; tiny
    # row sets use the per-vertex predicate instead.
    full_mask = state.active_x_mask() if total_deg >= state.n_x // 2 else None

    # A row stops scanning at its first active neighbour, so gathering every
    # edge up front does ~2.7x the necessary work on the acceptance inputs
    # (docs/performance.md). Instead the scan proceeds in geometrically
    # growing chunks of neighbour positions: rows that hit early — the
    # common case once trees cover the graph — never pay for their tails,
    # while deep rows converge to the single full gather within ~5 rounds.
    n = int(rows.shape[0])
    claim_of = np.full(n, UNMATCHED, dtype=INDEX_DTYPE)
    track = ws.want_costs
    scanned = np.zeros(n, dtype=np.int64) if track else None
    edges = 0
    # Live state is carried compacted — positions into ``rows`` plus each
    # row's next adjacency slot and remaining degree — so a round costs
    # O(live rows + gathered edges) with no full-width passes.
    idx_l = np.flatnonzero(deg_all > 0)
    start_l = row_start[idx_l]
    rem_l = deg_all[idx_l]
    # Regular bottom-up rows sit under tree-covered neighbourhoods and hit
    # on the very first edges, so the schedule starts tiny. Grafting rows
    # were just recycled because their trees died — their neighbourhoods
    # are mostly dead too and the typical row scans a large fraction of its
    # adjacency, so starting at the row set's mean degree resolves most
    # rows in one round instead of paying per-round compaction ~log(deg)
    # times (measured ~2ms on the rmat-14 acceptance input; a single full
    # gather is worse again, hub tails dominate).
    if region == "grafting":
        chunk = max(4, min(512, total_deg // max(n, 1)))
    else:
        chunk = 4
    while idx_l.size:
        take = np.minimum(rem_l, chunk)
        slot, offsets, total = _segment_slots(start_l, take, ws)
        dst = adj[slot]
        if full_mask is not None:
            active_edge = full_mask[dst]
        elif total:
            active_edge = _active_tree_mask(state, dst)
        else:
            active_edge = np.empty(0, dtype=bool)
        if obs is not None and total:
            obs.record_bulk("root_x", dst, READ, False, np.repeat(rows[idx_l], take))
        # First active neighbour per row via the sorted active-edge indices.
        hit_positions = np.flatnonzero(active_edge)
        starts = offsets[:-1]
        if hit_positions.size:
            pos = np.searchsorted(hit_positions, starts)
            safe_pos = np.minimum(pos, hit_positions.shape[0] - 1)
            first_edge = hit_positions[safe_pos]
            has_hit = (pos < hit_positions.shape[0]) & (first_edge < offsets[1:])
            cost = np.where(has_hit, first_edge - starts + 1, take)
            claim_of[idx_l[has_hit]] = dst[first_edge[has_hit]]
        else:
            has_hit = None
            cost = take
        edges += int(cost.sum())
        if track:
            scanned[idx_l] += cost
        keep = rem_l > take if has_hit is None else ~has_hit & (rem_l > take)
        idx_l = idx_l[keep]
        start_l = (start_l + take)[keep]
        rem_l = (rem_l - take)[keep]
        chunk *= 4

    has_hit_all = claim_of != UNMATCHED
    winners = rows[has_hit_all]
    claim_src = claim_of[has_hit_all]
    item_costs = scanned.astype(np.float64) + 1.0 if track else _NO_COSTS
    if obs is not None and winners.size:
        # Owned-row visited store: no atomic needed (Section III-B).
        obs.record_bulk("visited", winners, WRITE, False, winners)
    return _apply_claims(
        state, matching, winners, claim_src, winners, item_costs, edges, 0, ws
    )


def _apply_claims(
    state: ForestState,
    matching: Matching,
    winners: np.ndarray,
    claim_src: np.ndarray,
    claim_threads: np.ndarray,
    item_costs: np.ndarray,
    edges: int,
    attempts: int,
    ws: KernelWorkspace,
) -> LevelStats:
    """Algorithm 5 for a batch of claimed (y := winners, x := claim_src).

    ``claim_threads`` identifies the logical thread that owns each claim
    (the frontier X vertex in top-down, the row itself in bottom-up) for
    the race observer's attribution.
    """
    obs = state.observer
    claims = int(winners.shape[0])
    if claims:
        roots = state.root_x[claim_src]
        state.mark_visited(winners)
        state.parent[winners] = claim_src
        state.root_y[winners] = roots
        if obs is not None:
            obs.record_bulk("parent", winners, WRITE, False, claim_threads)
            obs.record_bulk("root_y", winners, WRITE, False, claim_threads)
        mates = matching.mate_y[winners]
        matched = mates != UNMATCHED
        next_frontier = mates[matched].astype(INDEX_DTYPE, copy=False)
        state.root_x[next_frontier] = roots[matched]
        # Incremental tree membership: winners joined a tree on the Y side,
        # their mates on the X side. graft_partition(tracked=True) partitions
        # exactly these vertices instead of scanning both full sides.
        state.tree_y_parts.append(winners)
        if next_frontier.size:
            state.tree_x_parts.append(next_frontier)
        if obs is not None and next_frontier.size:
            obs.record_bulk("root_x", next_frontier, WRITE, False, claim_threads[matched])
        # Unmatched winners end augmenting paths; one leaf survives per tree
        # (the paper's benign race — we keep the first claimant's endpoint,
        # deterministically).
        endpoint_y = winners[~matched]
        endpoint_roots = roots[~matched]
        if endpoint_y.size:
            win = first_claim(endpoint_roots, ws.slot_x, ws)
            state.leaf[endpoint_roots[win]] = endpoint_y[win]
            endpoints = int(np.count_nonzero(win))
            if obs is not None:
                # Every endpoint attempts the leaf write; concurrent attempts
                # on one root are the paper's benign write-write race.
                obs.record_bulk("leaf", endpoint_roots, WRITE, False, claim_threads[~matched])
        else:
            endpoints = 0
    else:
        next_frontier = np.empty(0, dtype=INDEX_DTYPE)
        endpoints = 0
    return LevelStats(
        next_frontier=next_frontier,
        item_costs=item_costs,
        edges=edges,
        claims=claims,
        attempts=max(attempts, claims),
        endpoints=endpoints,
    )


apply_claims = _apply_claims
"""Public alias of the sanctioned claim-commit path.

The process-pool engine (:mod:`repro.parallel.procpool`) merges worker
claims at its phase barriers and applies them through this exact routine,
so every ``visited``/``parent``/``root_y`` transition — regardless of
backend — flows through one channel that the analyzer and the race
observer both understand.
"""


def augment_all(
    state: ForestState, matching: Matching
) -> tuple[np.ndarray, np.ndarray]:
    """Step 2 of Algorithm 3: flip every discovered augmenting path.

    Returns ``(renewable_roots, path_lengths)`` — both arrays, so callers
    recording thousands of paths per phase stay vectorized end to end.
    Paths are vertex-disjoint
    (one per tree, trees vertex-disjoint), so all of them advance in
    lockstep: each iteration flips one matched edge on every still-live
    path with conflict-free scatter writes. The per-path pointer chasing is
    inherently sequential, which is why path length drives the parallel
    augment cost.
    """
    mate_x = matching.mate_x
    mate_y = matching.mate_y
    obs = state.observer
    roots = np.flatnonzero((mate_x == UNMATCHED) & (state.leaf != UNMATCHED)).astype(INDEX_DTYPE)
    parent = state.parent
    lengths = np.zeros(roots.shape[0], dtype=np.int64)
    if roots.size and obs is not None:
        obs.begin_region("augment")
    live = np.arange(roots.shape[0])
    y = state.leaf[roots].astype(INDEX_DTYPE, copy=False)
    while live.size:
        x = parent[y]
        prev_mate = mate_x[x]
        mate_x[x] = y
        mate_y[y] = x
        if obs is not None:
            obs.record_bulk("mate_x", x, WRITE, False, roots[live])
            obs.record_bulk("mate_y", y, WRITE, False, roots[live])
        lengths[live] += 1
        cont = prev_mate != UNMATCHED
        live = live[cont]
        lengths[live] += 1
        y = prev_mate[cont].astype(INDEX_DTYPE, copy=False)
    return roots, lengths


@dataclass
class GraftStats:
    """Result of the GRAFT statistics pass (Alg. 7 lines 2-4)."""

    active_x_count: int
    active_y: np.ndarray
    renewable_y: np.ndarray


def graft_statistics(state: ForestState) -> GraftStats:
    """Classify vertices into active / renewable sets and clear the stale
    root pointers of renewable X vertices."""
    return graft_partition(state, recycle=False)


def _concat_parts(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=INDEX_DTYPE)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def graft_partition(
    state: ForestState, *, recycle: bool = True, tracked: bool = False
) -> GraftStats:
    """Fused GRAFT statistics + renewable-Y recycling (Alg. 7 lines 2-6).

    One pass over each side partitions vertices into active / renewable,
    clears the stale root pointers of renewable X vertices and — when
    ``recycle`` is set — resets the renewable Y rows (visited flag, root)
    so they can be re-claimed, all without re-deriving the ``leaf`` gather
    per query the way the individual mask helpers do.

    With ``tracked`` the partition runs over the state's incremental tree
    membership lists (``tree_x_parts`` / ``tree_y_parts``) instead of both
    full vertex ranges — O(tree vertices) per phase rather than O(n_x+n_y).
    Only valid when every forest update since the last partition went
    through these kernels (the numpy engine's flow); ad-hoc states built by
    tests or the interleaved programs must use the default full scan.
    """
    if tracked:
        tx = _concat_parts(state.tree_x_parts)
        renew_tx = state.leaf[state.root_x[tx]] != UNMATCHED
        state.root_x[tx[renew_tx]] = UNMATCHED
        active_x = tx[~renew_tx]
        ty = _concat_parts(state.tree_y_parts)
        renew_ty = state.leaf[state.root_y[ty]] != UNMATCHED
        active_y = ty[~renew_ty]
        renewable_y = ty[renew_ty]
        state.tree_x_parts = [active_x]
        state.tree_y_parts = [active_y]
        if recycle:
            reset_rows(state, renewable_y)
        return GraftStats(
            active_x_count=int(active_x.shape[0]),
            active_y=active_y,
            renewable_y=renewable_y,
        )
    rooted_x = state.root_x != UNMATCHED
    safe_x = np.where(rooted_x, state.root_x, 0)
    renewable_mask_x = rooted_x & (state.leaf[safe_x] != UNMATCHED)
    state.root_x[renewable_mask_x] = UNMATCHED
    active_x_count = int(np.count_nonzero(rooted_x & ~renewable_mask_x))
    rooted_y = state.root_y != UNMATCHED
    safe_y = np.where(rooted_y, state.root_y, 0)
    renewable_mask_y = rooted_y & (state.leaf[safe_y] != UNMATCHED)
    active_y = np.flatnonzero(rooted_y & ~renewable_mask_y).astype(INDEX_DTYPE)
    renewable_y = np.flatnonzero(renewable_mask_y).astype(INDEX_DTYPE)
    if recycle:
        reset_rows(state, renewable_y)
    return GraftStats(active_x_count=active_x_count, active_y=active_y, renewable_y=renewable_y)


def reset_rows(state: ForestState, rows: np.ndarray) -> None:
    """Clear visited flags and roots of ``rows`` (renewable-Y recycling).

    Routed through :meth:`ForestState.clear_visited`, so recycled rows
    re-enter the incremental candidate list in place — the next bottom-up
    level sees them without any rescan.
    """
    if rows.size:
        state.clear_visited(rows)
        state.root_y[rows] = UNMATCHED


def rebuild_from_unmatched(state: ForestState, matching: Matching) -> np.ndarray:
    """The destroy-and-rebuild branch of Algorithm 7 (lines 10-15).

    The root frontier comes from the state's persistent unmatched-X seed
    list (:meth:`ForestState.refresh_seeds`): O(n_x) on the first call of a
    run, O(remaining seeds) afterwards.
    """
    state.root_x[:] = UNMATCHED
    frontier = state.refresh_seeds(matching)
    state.root_x[frontier] = frontier
    state.leaf[frontier] = UNMATCHED
    # All trees were just destroyed: the seeds are the only tree members.
    state.tree_x_parts = [frontier]
    state.tree_y_parts = []
    return frontier
