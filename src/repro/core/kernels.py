"""Vectorized (numpy) level kernels for MS-BFS-Graft.

These kernels implement one barrier-delimited parallel region each, with the
*parallel* semantics of the paper's OpenMP implementation: every work item
of a level acts on the level-start state; conflicting ``visited`` claims are
resolved to a single winner (the serialisation real atomics would impose —
we pick the first claimant in frontier order, deterministically); multiple
augmenting-path endpoints in one tree are the paper's benign ``leaf`` race —
a single winner is kept.

Each kernel returns the next frontier plus the statistics the work trace
needs (per-item costs, atomic counts, traversed edges).

Implementation notes on the fast path:

* Claim resolution is a fused O(k) scatter (:func:`first_claim`) instead of
  an O(k log k) sort — the winner for a contested Y vertex is the first
  claimant in frontier order, which is both deterministic and exactly the
  serialisation a first-come-first-served CAS would impose.
* Kernels accept an optional :class:`KernelWorkspace` so the per-level
  scratch arrays are allocated once per run, not once per level.
* Augmentation advances all discovered augmenting paths in lockstep
  (:func:`augment_all`): the paths are vertex-disjoint, so the per-step
  scatter writes never conflict — the same argument that lets the paper
  flip them in parallel.
* When a :class:`~repro.parallel.shared.BulkAccessObserver` is attached to
  the :class:`~repro.core.forest.ForestState` (``state.observer``), every
  kernel reports its bulk reads/writes of shared arrays, so the dynamic
  race detector (``repro-match racecheck --engine numpy``) sees the fast
  path's memory footprint instead of going blind on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forest import ForestState
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.matching.base import UNMATCHED, Matching
from repro.parallel.shared import READ, WRITE


class KernelWorkspace:
    """Reusable per-run scratch buffers for the level kernels.

    ``slot_x`` / ``slot_y`` back the :func:`first_claim` scatter; their
    contents are meaningless between calls (every slot that is read was
    written earlier in the same call), so no per-level clearing is needed.
    """

    __slots__ = ("slot_x", "slot_y")

    def __init__(self, n_x: int, n_y: int) -> None:
        self.slot_x = np.empty(n_x, dtype=np.int64)
        self.slot_y = np.empty(n_y, dtype=np.int64)

    @classmethod
    def for_graph(cls, graph: BipartiteCSR) -> "KernelWorkspace":
        return cls(graph.n_x, graph.n_y)


def first_claim(targets: np.ndarray, slot: np.ndarray) -> np.ndarray:
    """First-writer-wins claim resolution in O(len(targets)).

    Returns a boolean mask selecting, for every distinct value in
    ``targets``, its *first* occurrence — the claimant that would win a
    first-come-first-served CAS. ``slot`` is an int64 scratch array
    indexable by every target value; only the slots touched here are read,
    so it never needs clearing.
    """
    order = np.arange(targets.shape[0], dtype=np.int64)
    # Reversed scatter: the last write per slot is the *first* occurrence.
    slot[targets[::-1]] = order[::-1]
    return slot[targets] == order


@dataclass
class LevelStats:
    """What one kernel invocation did (work-trace + counter input)."""

    next_frontier: np.ndarray
    item_costs: np.ndarray
    edges: int
    claims: int
    """Successful visited-flag claims (atomic CAS wins)."""
    attempts: int
    """Total claim attempts (wins + losses); losses model CAS contention."""
    endpoints: int
    """Unmatched Y vertices reached (augmenting paths discovered)."""


def _empty_stats() -> LevelStats:
    return LevelStats(
        next_frontier=np.empty(0, dtype=INDEX_DTYPE),
        item_costs=np.empty(0),
        edges=0,
        claims=0,
        attempts=0,
        endpoints=0,
    )


def _gather_segments(ptr: np.ndarray, adj: np.ndarray, rows: np.ndarray):
    """Concatenate the adjacency slices of ``rows``.

    Returns ``(sources, targets, offsets)`` where ``sources[k]`` is the row
    owning edge slot ``k``, ``targets[k]`` its neighbour, and ``offsets``
    the per-row segment boundaries (len(rows)+1).
    """
    deg = ptr[rows + 1] - ptr[rows]
    total = int(deg.sum())
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(deg)])
    if total == 0:
        return (
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            offsets,
        )
    # Edge slot k belongs to row r with offsets[r] <= k < offsets[r+1]; its
    # position in adj is ptr[rows[r]] + (k - offsets[r]).
    sources = np.repeat(rows, deg)
    slot = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], deg) + np.repeat(ptr[rows], deg)
    return sources, adj[slot], offsets


def topdown_level(
    graph: BipartiteCSR,
    state: ForestState,
    matching: Matching,
    frontier: np.ndarray,
    workspace: KernelWorkspace | None = None,
) -> LevelStats:
    """Algorithm 4, one level, parallel semantics.

    Every active-tree frontier vertex scans its full adjacency (as the
    concurrent version does — no serial early-break); unvisited targets are
    claimed first-writer-wins.
    """
    ws = workspace if workspace is not None else KernelWorkspace.for_graph(graph)
    obs = state.observer
    frontier = np.asarray(frontier, dtype=INDEX_DTYPE)
    if frontier.size:
        active = state.active_x_mask()[frontier]
        frontier = frontier[active]
    if frontier.size == 0:
        return _empty_stats()
    if obs is not None:
        obs.begin_region("topdown")
    src, dst, offsets = _gather_segments(graph.x_ptr, graph.x_adj, frontier)
    edges = int(dst.shape[0])
    item_costs = np.diff(offsets).astype(np.float64) + 1.0
    unvis = state.visited[dst] == 0
    src_u = src[unvis]
    dst_u = dst[unvis]
    attempts = int(dst_u.shape[0])
    if attempts:
        # First occurrence per target = the winning atomic claim.
        win = first_claim(dst_u, ws.slot_y)
        winners = dst_u[win]
        claim_src = src_u[win]
        if obs is not None:
            # CAS on visited: winners write atomically, losers observe the
            # set flag (the failing read half of the CAS).
            obs.record_bulk("visited", winners, WRITE, True, claim_src)
            obs.record_bulk("visited", dst_u[~win], READ, True, src_u[~win])
    else:
        winners = np.empty(0, dtype=INDEX_DTYPE)
        claim_src = np.empty(0, dtype=INDEX_DTYPE)
    return _apply_claims(
        state, matching, winners, claim_src, claim_src, item_costs, edges, attempts, ws
    )


def bottomup_level(
    graph: BipartiteCSR,
    state: ForestState,
    matching: Matching,
    rows: np.ndarray,
    workspace: KernelWorkspace | None = None,
    region: str = "bottomup",
) -> LevelStats:
    """Algorithm 6 over row set ``rows`` (regular bottom-up or grafting).

    Each row scans its neighbours up to (and including) its first
    active-tree neighbour, based on the level-start active state. No atomics
    are needed: each row is owned by a single thread (Section III-B).
    """
    ws = workspace if workspace is not None else KernelWorkspace.for_graph(graph)
    obs = state.observer
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return _empty_stats()
    if obs is not None:
        obs.begin_region(region)
    src, dst, offsets = _gather_segments(graph.y_ptr, graph.y_adj, rows)
    active_edge = state.active_x_mask()[dst] if dst.size else np.empty(0, dtype=bool)
    # First active neighbour per row, via the sorted indices of active edges.
    hit_positions = np.flatnonzero(active_edge)
    starts = offsets[:-1]
    ends = offsets[1:]
    pos = np.searchsorted(hit_positions, starts)
    safe_pos = np.minimum(pos, max(hit_positions.shape[0] - 1, 0))
    has_hit = (pos < hit_positions.shape[0]) & (
        hit_positions[safe_pos] < ends if hit_positions.size else np.zeros(rows.shape, dtype=bool)
    )
    first_edge = hit_positions[safe_pos] if hit_positions.size else np.zeros(rows.shape, dtype=np.int64)
    deg = (ends - starts).astype(np.float64)
    scanned = np.where(has_hit, (first_edge - starts + 1).astype(np.float64), deg)
    edges = int(scanned.sum())
    item_costs = scanned + 1.0
    winners = rows[has_hit]
    claim_src = dst[first_edge[has_hit]] if winners.size else np.empty(0, dtype=INDEX_DTYPE)
    if obs is not None and dst.size:
        # The scan's racy root_x/leaf reads (stale membership is benign) and
        # the owned-row visited store (no atomic needed, Section III-B).
        obs.record_bulk("root_x", dst, READ, False, src)
        if winners.size:
            obs.record_bulk("visited", winners, WRITE, False, winners)
    return _apply_claims(
        state, matching, winners, claim_src, winners, item_costs, edges, 0, ws
    )


def _apply_claims(
    state: ForestState,
    matching: Matching,
    winners: np.ndarray,
    claim_src: np.ndarray,
    claim_threads: np.ndarray,
    item_costs: np.ndarray,
    edges: int,
    attempts: int,
    ws: KernelWorkspace,
) -> LevelStats:
    """Algorithm 5 for a batch of claimed (y := winners, x := claim_src).

    ``claim_threads`` identifies the logical thread that owns each claim
    (the frontier X vertex in top-down, the row itself in bottom-up) for
    the race observer's attribution.
    """
    obs = state.observer
    claims = int(winners.shape[0])
    if claims:
        roots = state.root_x[claim_src]
        state.visited[winners] = 1
        state.parent[winners] = claim_src
        state.root_y[winners] = roots
        state.num_unvisited_y -= claims
        if obs is not None:
            obs.record_bulk("parent", winners, WRITE, False, claim_threads)
            obs.record_bulk("root_y", winners, WRITE, False, claim_threads)
        mates = matching.mate_y[winners]
        matched = mates != UNMATCHED
        next_frontier = mates[matched].astype(INDEX_DTYPE)
        state.root_x[next_frontier] = roots[matched]
        if obs is not None and next_frontier.size:
            obs.record_bulk("root_x", next_frontier, WRITE, False, claim_threads[matched])
        # Unmatched winners end augmenting paths; one leaf survives per tree
        # (the paper's benign race — we keep the first claimant's endpoint,
        # deterministically).
        endpoint_y = winners[~matched]
        endpoint_roots = roots[~matched]
        if endpoint_y.size:
            win = first_claim(endpoint_roots, ws.slot_x)
            state.leaf[endpoint_roots[win]] = endpoint_y[win]
            endpoints = int(np.count_nonzero(win))
            if obs is not None:
                # Every endpoint attempts the leaf write; concurrent attempts
                # on one root are the paper's benign write-write race.
                obs.record_bulk("leaf", endpoint_roots, WRITE, False, claim_threads[~matched])
        else:
            endpoints = 0
    else:
        next_frontier = np.empty(0, dtype=INDEX_DTYPE)
        endpoints = 0
    return LevelStats(
        next_frontier=next_frontier,
        item_costs=item_costs,
        edges=edges,
        claims=claims,
        attempts=max(attempts, claims),
        endpoints=endpoints,
    )


def augment_all(
    state: ForestState, matching: Matching
) -> tuple[np.ndarray, list[int]]:
    """Step 2 of Algorithm 3: flip every discovered augmenting path.

    Returns ``(renewable_roots, path_lengths)``. Paths are vertex-disjoint
    (one per tree, trees vertex-disjoint), so all of them advance in
    lockstep: each iteration flips one matched edge on every still-live
    path with conflict-free scatter writes. The per-path pointer chasing is
    inherently sequential, which is why path length drives the parallel
    augment cost.
    """
    mate_x = matching.mate_x
    mate_y = matching.mate_y
    obs = state.observer
    roots = np.flatnonzero((mate_x == UNMATCHED) & (state.leaf != UNMATCHED)).astype(INDEX_DTYPE)
    parent = state.parent
    lengths = np.zeros(roots.shape[0], dtype=np.int64)
    if roots.size and obs is not None:
        obs.begin_region("augment")
    live = np.arange(roots.shape[0])
    y = state.leaf[roots].astype(INDEX_DTYPE)
    while live.size:
        x = parent[y]
        prev_mate = mate_x[x]
        mate_x[x] = y
        mate_y[y] = x
        if obs is not None:
            obs.record_bulk("mate_x", x, WRITE, False, roots[live])
            obs.record_bulk("mate_y", y, WRITE, False, roots[live])
        lengths[live] += 1
        cont = prev_mate != UNMATCHED
        live = live[cont]
        lengths[live] += 1
        y = prev_mate[cont].astype(INDEX_DTYPE)
    return roots, lengths.tolist()


@dataclass
class GraftStats:
    """Result of the GRAFT statistics pass (Alg. 7 lines 2-4)."""

    active_x_count: int
    active_y: np.ndarray
    renewable_y: np.ndarray


def graft_statistics(state: ForestState) -> GraftStats:
    """Classify vertices into active / renewable sets and clear the stale
    root pointers of renewable X vertices."""
    return graft_partition(state, recycle=False)


def graft_partition(state: ForestState, *, recycle: bool = True) -> GraftStats:
    """Fused GRAFT statistics + renewable-Y recycling (Alg. 7 lines 2-6).

    One pass over each side partitions vertices into active / renewable,
    clears the stale root pointers of renewable X vertices and — when
    ``recycle`` is set — resets the renewable Y rows (visited flag, root)
    so they can be re-claimed, all without re-deriving the ``leaf`` gather
    per query the way the individual mask helpers do.
    """
    rooted_x = state.root_x != UNMATCHED
    safe_x = np.where(rooted_x, state.root_x, 0)
    renewable_mask_x = rooted_x & (state.leaf[safe_x] != UNMATCHED)
    state.root_x[renewable_mask_x] = UNMATCHED
    active_x_count = int(np.count_nonzero(rooted_x & ~renewable_mask_x))
    rooted_y = state.root_y != UNMATCHED
    safe_y = np.where(rooted_y, state.root_y, 0)
    renewable_mask_y = rooted_y & (state.leaf[safe_y] != UNMATCHED)
    active_y = np.flatnonzero(rooted_y & ~renewable_mask_y).astype(INDEX_DTYPE)
    renewable_y = np.flatnonzero(renewable_mask_y).astype(INDEX_DTYPE)
    if recycle:
        reset_rows(state, renewable_y)
    return GraftStats(active_x_count=active_x_count, active_y=active_y, renewable_y=renewable_y)


def reset_rows(state: ForestState, rows: np.ndarray) -> None:
    """Clear visited flags and roots of ``rows`` (renewable-Y recycling)."""
    if rows.size:
        state.visited[rows] = 0
        state.root_y[rows] = UNMATCHED
        state.num_unvisited_y += int(rows.shape[0])


def rebuild_from_unmatched(state: ForestState, matching: Matching) -> np.ndarray:
    """The destroy-and-rebuild branch of Algorithm 7 (lines 10-15)."""
    state.root_x[:] = UNMATCHED
    frontier = matching.unmatched_x()
    state.root_x[frontier] = frontier
    state.leaf[frontier] = UNMATCHED
    return frontier
