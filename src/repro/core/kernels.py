"""Vectorized (numpy) level kernels for MS-BFS-Graft.

These kernels implement one barrier-delimited parallel region each, with the
*parallel* semantics of the paper's OpenMP implementation: every work item
of a level acts on the level-start state; conflicting ``visited`` claims are
resolved to a single winner (the serialisation real atomics would impose —
we pick the first claimant in frontier order, deterministically); multiple
augmenting-path endpoints in one tree are the paper's benign ``leaf`` race —
a single winner is kept.

Each kernel returns the next frontier plus the statistics the work trace
needs (per-item costs, atomic counts, traversed edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forest import ForestState
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.matching.base import UNMATCHED, Matching


@dataclass
class LevelStats:
    """What one kernel invocation did (work-trace + counter input)."""

    next_frontier: np.ndarray
    item_costs: np.ndarray
    edges: int
    claims: int
    """Successful visited-flag claims (atomic CAS wins)."""
    attempts: int
    """Total claim attempts (wins + losses); losses model CAS contention."""
    endpoints: int
    """Unmatched Y vertices reached (augmenting paths discovered)."""


def _gather_segments(ptr: np.ndarray, adj: np.ndarray, rows: np.ndarray):
    """Concatenate the adjacency slices of ``rows``.

    Returns ``(sources, targets, offsets)`` where ``sources[k]`` is the row
    owning edge slot ``k``, ``targets[k]`` its neighbour, and ``offsets``
    the per-row segment boundaries (len(rows)+1).
    """
    deg = ptr[rows + 1] - ptr[rows]
    total = int(deg.sum())
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(deg)])
    if total == 0:
        return (
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            offsets,
        )
    # Edge slot k belongs to row r with offsets[r] <= k < offsets[r+1]; its
    # position in adj is ptr[rows[r]] + (k - offsets[r]).
    sources = np.repeat(rows, deg)
    slot = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], deg) + np.repeat(ptr[rows], deg)
    return sources, adj[slot], offsets


def topdown_level(
    graph: BipartiteCSR, state: ForestState, matching: Matching, frontier: np.ndarray
) -> LevelStats:
    """Algorithm 4, one level, parallel semantics.

    Every active-tree frontier vertex scans its full adjacency (as the
    concurrent version does — no serial early-break); unvisited targets are
    claimed first-writer-wins.
    """
    frontier = np.asarray(frontier, dtype=INDEX_DTYPE)
    if frontier.size:
        active = state.active_x_mask()[frontier]
        frontier = frontier[active]
    if frontier.size == 0:
        return LevelStats(
            next_frontier=np.empty(0, dtype=INDEX_DTYPE),
            item_costs=np.empty(0),
            edges=0,
            claims=0,
            attempts=0,
            endpoints=0,
        )
    src, dst, offsets = _gather_segments(graph.x_ptr, graph.x_adj, frontier)
    edges = int(dst.shape[0])
    item_costs = np.diff(offsets).astype(np.float64) + 1.0
    unvis = state.visited[dst] == 0
    src_u = src[unvis]
    dst_u = dst[unvis]
    attempts = int(dst_u.shape[0])
    # First occurrence per target = the winning atomic claim.
    winners, first_idx = np.unique(dst_u, return_index=True)
    claim_src = src_u[first_idx]
    return _apply_claims(state, matching, winners, claim_src, item_costs, edges, attempts)


def bottomup_level(
    graph: BipartiteCSR, state: ForestState, matching: Matching, rows: np.ndarray
) -> LevelStats:
    """Algorithm 6 over row set ``rows`` (regular bottom-up or grafting).

    Each row scans its neighbours up to (and including) its first
    active-tree neighbour, based on the level-start active state. No atomics
    are needed: each row is owned by a single thread (Section III-B).
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    if rows.size == 0:
        return LevelStats(
            next_frontier=np.empty(0, dtype=INDEX_DTYPE),
            item_costs=np.empty(0),
            edges=0,
            claims=0,
            attempts=0,
            endpoints=0,
        )
    src, dst, offsets = _gather_segments(graph.y_ptr, graph.y_adj, rows)
    active_edge = state.active_x_mask()[dst] if dst.size else np.empty(0, dtype=bool)
    # First active neighbour per row, via the sorted indices of active edges.
    hit_positions = np.flatnonzero(active_edge)
    starts = offsets[:-1]
    ends = offsets[1:]
    pos = np.searchsorted(hit_positions, starts)
    safe_pos = np.minimum(pos, max(hit_positions.shape[0] - 1, 0))
    has_hit = (pos < hit_positions.shape[0]) & (
        hit_positions[safe_pos] < ends if hit_positions.size else np.zeros(rows.shape, dtype=bool)
    )
    first_edge = hit_positions[safe_pos] if hit_positions.size else np.zeros(rows.shape, dtype=np.int64)
    deg = (ends - starts).astype(np.float64)
    scanned = np.where(has_hit, (first_edge - starts + 1).astype(np.float64), deg)
    edges = int(scanned.sum())
    item_costs = scanned + 1.0
    winners = rows[has_hit]
    claim_src = dst[first_edge[has_hit]] if winners.size else np.empty(0, dtype=INDEX_DTYPE)
    return _apply_claims(state, matching, winners, claim_src, item_costs, edges, attempts=0)


def _apply_claims(
    state: ForestState,
    matching: Matching,
    winners: np.ndarray,
    claim_src: np.ndarray,
    item_costs: np.ndarray,
    edges: int,
    attempts: int,
) -> LevelStats:
    """Algorithm 5 for a batch of claimed (y := winners, x := claim_src)."""
    claims = int(winners.shape[0])
    if claims:
        roots = state.root_x[claim_src]
        state.visited[winners] = 1
        state.parent[winners] = claim_src
        state.root_y[winners] = roots
        state.num_unvisited_y -= claims
        mates = matching.mate_y[winners]
        matched = mates != UNMATCHED
        next_frontier = mates[matched].astype(INDEX_DTYPE)
        state.root_x[next_frontier] = roots[matched]
        # Unmatched winners end augmenting paths; one leaf survives per tree
        # (the paper's benign race — we keep the first, deterministically).
        endpoint_y = winners[~matched]
        endpoint_roots = roots[~matched]
        uniq_roots, first = np.unique(endpoint_roots, return_index=True)
        state.leaf[uniq_roots] = endpoint_y[first]
        endpoints = int(uniq_roots.shape[0])
    else:
        next_frontier = np.empty(0, dtype=INDEX_DTYPE)
        endpoints = 0
    return LevelStats(
        next_frontier=next_frontier,
        item_costs=item_costs,
        edges=edges,
        claims=claims,
        attempts=max(attempts, claims),
        endpoints=endpoints,
    )


def augment_all(
    state: ForestState, matching: Matching
) -> tuple[np.ndarray, list[int]]:
    """Step 2 of Algorithm 3: flip every discovered augmenting path.

    Returns ``(renewable_roots, path_lengths)``. Paths are vertex-disjoint
    (one per tree, trees vertex-disjoint) so the real implementation flips
    them in parallel; the pointer chasing itself is inherently sequential
    per path, which is why path length drives the parallel augment cost.
    """
    mate_x = matching.mate_x
    mate_y = matching.mate_y
    roots = np.flatnonzero((mate_x == UNMATCHED) & (state.leaf != UNMATCHED)).astype(INDEX_DTYPE)
    parent = state.parent
    lengths: list[int] = []
    for x0 in roots:
        y = int(state.leaf[x0])
        length = 0
        while True:
            x = int(parent[y])
            prev_mate = int(mate_x[x])
            mate_x[x] = y
            mate_y[y] = x
            length += 1
            if prev_mate == UNMATCHED:
                break
            y = prev_mate
            length += 1
        lengths.append(length)
    return roots, lengths


@dataclass
class GraftStats:
    """Result of the GRAFT statistics pass (Alg. 7 lines 2-4)."""

    active_x_count: int
    active_y: np.ndarray
    renewable_y: np.ndarray


def graft_statistics(state: ForestState) -> GraftStats:
    """Classify vertices into active / renewable sets and clear the stale
    root pointers of renewable X vertices."""
    renewable_x = np.flatnonzero(state.renewable_x_mask())
    state.root_x[renewable_x] = UNMATCHED
    active_x_count = int(np.count_nonzero(state.root_x != UNMATCHED))
    active_y = np.flatnonzero(state.active_y_mask()).astype(INDEX_DTYPE)
    renewable_y = np.flatnonzero(state.renewable_y_mask()).astype(INDEX_DTYPE)
    return GraftStats(active_x_count=active_x_count, active_y=active_y, renewable_y=renewable_y)


def reset_rows(state: ForestState, rows: np.ndarray) -> None:
    """Clear visited flags and roots of ``rows`` (renewable-Y recycling)."""
    if rows.size:
        state.visited[rows] = 0
        state.root_y[rows] = UNMATCHED
        state.num_unvisited_y += int(rows.shape[0])


def rebuild_from_unmatched(state: ForestState, matching: Matching) -> np.ndarray:
    """The destroy-and-rebuild branch of Algorithm 7 (lines 10-15)."""
    state.root_x[:] = UNMATCHED
    frontier = matching.unmatched_x()
    state.root_x[frontier] = frontier
    state.leaf[frontier] = UNMATCHED
    return frontier
