"""Pure-Python serial reference engine for MS-BFS-Graft.

Implements Algorithms 3-7 with the paper's *serial* execution order: within
a top-down level, a tree stops growing the instant its augmenting path is
found (the ``break`` in Algorithm 4's serial reading), and bottom-up rows
stop scanning at their first active neighbour. This engine is the
correctness oracle the vectorized and interleaved engines are tested
against; it is also the fairest serial implementation for the Fig. 1-style
edge counts.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.options import GraftOptions
from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.instrument.frontier import FrontierLog
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching
from repro.telemetry.session import NULL_TELEMETRY
from repro.util.timer import StepTimer


def run_python(
    graph: BipartiteCSR, initial: Matching | None, options: GraftOptions
) -> MatchResult:
    """Serial MS-BFS-Graft (Algorithm 3), pure-Python reference."""
    start = time.perf_counter()
    tel = options.telemetry if options.telemetry is not None else NULL_TELEMETRY
    with tel.run_span("python", algorithm=options.algorithm_name, graph=graph):
        result = _run_python(graph, initial, options, tel, start)
    return result


def _run_python(
    graph: BipartiteCSR,
    initial: Matching | None,
    options: GraftOptions,
    tel,
    start: float,
) -> MatchResult:
    with tel.step("setup"):
        matching = init_matching(graph, initial)
        counters = Counters()
        timer = StepTimer()
        frontier_log = FrontierLog() if options.record_frontiers else None
        x_ptr, x_adj, y_ptr, y_adj = adjacency_lists(graph)
        n_x, n_y = graph.n_x, graph.n_y
        mate_x = matching.mate_x.tolist()
        mate_y = matching.mate_y.tolist()
        visited = [0] * n_y
        parent = [-1] * n_y
        root_x = [-1] * n_x
        root_y = [-1] * n_y
        leaf = [-1] * n_x
        alpha = options.alpha
        edges = 0
        num_unvisited = n_y
        deg_x = [x_ptr[x + 1] - x_ptr[x] for x in range(n_x)]
        deg_y = [y_ptr[y + 1] - y_ptr[y] for y in range(n_y)]
        unvisited_deg = sum(deg_y)
        # Initial frontier: all unmatched X vertices become tree roots.
        frontier = [x for x in range(n_x) if mate_x[x] == -1]
        for x in frontier:
            root_x[x] = x
            leaf[x] = -1

    def prefer_top_down(frontier: List[int]) -> bool:
        if not options.direction_optimizing:
            return True
        if options.direction_strategy == "edge":
            return sum(deg_x[x] for x in frontier) < unvisited_deg / alpha
        return len(frontier) < num_unvisited / alpha

    def topdown(frontier: List[int]) -> List[int]:
        """Algorithm 4: expand active-tree frontier vertices."""
        nonlocal edges, num_unvisited, unvisited_deg
        queue: List[int] = []
        for x in frontier:
            rx = root_x[x]
            if rx == -1 or leaf[rx] != -1:
                continue  # x no longer in an active tree
            for i in range(x_ptr[x], x_ptr[x + 1]):
                edges += 1
                y = x_adj[i]
                if visited[y]:
                    continue
                visited[y] = 1
                num_unvisited -= 1
                unvisited_deg -= deg_y[y]
                parent[y] = x
                root_y[y] = rx
                mate = mate_y[y]
                if mate != -1:
                    queue.append(mate)
                    root_x[mate] = rx
                else:
                    leaf[rx] = y  # augmenting path found; tree is renewable
                    break  # serial semantics: stop growing this tree
        return queue

    def bottomup(rows: List[int]) -> List[int]:
        """Algorithm 6: attach rows of R to any active tree (first hit)."""
        nonlocal edges, num_unvisited, unvisited_deg
        queue: List[int] = []
        for y in rows:
            for i in range(y_ptr[y], y_ptr[y + 1]):
                edges += 1
                x = y_adj[i]
                rx = root_x[x]
                if rx != -1 and leaf[rx] == -1:
                    visited[y] = 1
                    num_unvisited -= 1
                    unvisited_deg -= deg_y[y]
                    parent[y] = x
                    root_y[y] = rx
                    mate = mate_y[y]
                    if mate != -1:
                        queue.append(mate)
                        root_x[mate] = rx
                    else:
                        leaf[rx] = y
                    break  # stop exploring y's neighbours (Alg. 6 line 7)
        return queue

    while True:
        counters.phases += 1
        options.begin_phase(counters.phases)
        if frontier_log is not None:
            frontier_log.start_phase()

        # --- Step 1: grow the alternating BFS forest ------------------- #
        while frontier:
            if num_unvisited == 0:
                # No undiscovered Y vertex remains; the phase cannot make
                # further progress.
                frontier = []
                break
            if frontier_log is not None:
                frontier_log.record(len(frontier))
            tel.observe_frontier(len(frontier))
            counters.bfs_levels += 1
            unvisited_before = num_unvisited
            edges_before = edges
            if prefer_top_down(frontier):
                counters.topdown_steps += 1
                with timer.step("topdown"), tel.step("topdown"):
                    frontier = topdown(frontier)
                tel.count_level("topdown", claims=unvisited_before - num_unvisited)
            else:
                counters.bottomup_steps += 1
                with timer.step("bottomup"), tel.step("bottomup"):
                    rows = [y for y in range(n_y) if not visited[y]]
                    frontier = bottomup(rows)
                tel.count_level("bottomup", claims=unvisited_before - num_unvisited)
            tel.count_edges(edges - edges_before)
            tel.observe_candidates(num_unvisited)

        # --- Step 2: augment along the discovered paths ---------------- #
        augmented = 0
        with timer.step("augment"), tel.step("augment"):
            for x0 in range(n_x):
                if mate_x[x0] != -1 or leaf[x0] == -1:
                    continue
                length = 0
                y = leaf[x0]
                while True:
                    x = parent[y]
                    prev_mate = mate_x[x]
                    mate_x[x] = y
                    mate_y[y] = x
                    length += 1
                    if prev_mate == -1:
                        break
                    y = prev_mate
                    length += 1
                counters.record_path(length)
                augmented += 1
        if augmented == 0:
            break  # no augmenting path in this phase: matching is maximum

        # --- Step 3: rebuild the frontier (GRAFT, Algorithm 7) --------- #
        with timer.step("statistics"), tel.step("statistics"):
            active_x_count = 0
            for x in range(n_x):
                rx = root_x[x]
                if rx != -1:
                    if leaf[rx] == -1:
                        active_x_count += 1
                    else:
                        root_x[x] = -1  # renewable X: clear stale root
            renewable_y: List[int] = []
            active_y: List[int] = []
            for y in range(n_y):
                ry = root_y[y]
                if ry != -1:
                    if leaf[ry] == -1:
                        active_y.append(y)
                    else:
                        renewable_y.append(y)
        with timer.step("grafting"), tel.step("grafting"):
            for y in renewable_y:
                visited[y] = 0
                root_y[y] = -1
                unvisited_deg += deg_y[y]
            num_unvisited += len(renewable_y)
            if options.grafting and active_x_count > len(renewable_y) / alpha:
                edges_before = edges
                frontier = bottomup(renewable_y)
                tel.count_edges(edges - edges_before)
                counters.grafts += len(frontier)
            else:
                counters.tree_rebuilds += 1
                for y in active_y:
                    visited[y] = 0
                    root_y[y] = -1
                    unvisited_deg += deg_y[y]
                num_unvisited += len(active_y)
                for x in range(n_x):
                    root_x[x] = -1
                frontier = [x for x in range(n_x) if mate_x[x] == -1]
                for x in frontier:
                    root_x[x] = x
                    leaf[x] = -1

    matching.mate_x[:] = mate_x
    matching.mate_y[:] = mate_y
    counters.edges_traversed = edges
    tel.finish_run(counters)
    return MatchResult(
        matching=matching,
        algorithm=options.algorithm_name,
        counters=counters,
        breakdown=dict(timer.totals),
        frontier_log=frontier_log,
        wall_seconds=time.perf_counter() - start,
    )
