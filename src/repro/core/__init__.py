"""The paper's contribution: the MS-BFS-Graft algorithm (Algorithms 3-7).

Public entry point: :func:`ms_bfs_graft` (and the :func:`repro.matching.ms_bfs`
wrapper for the no-grafting baseline). Three engines implement identical
algorithm semantics:

* ``engine="python"`` — pure-Python serial reference, faithful to the
  paper's serial execution order (trees stop growing the moment their
  augmenting path is found);
* ``engine="numpy"`` — vectorized level-synchronous kernels with *parallel*
  semantics (all frontier vertices of a level act on the level-start state,
  claims resolved first-writer-wins — what the OpenMP implementation's
  atomics produce); this engine also emits the work traces the simulated
  machine consumes;
* ``engine="interleaved"`` — executes every parallel region on the
  interleaved thread simulator with simulated atomics, exercising the race
  semantics (Section III-B's benign ``leaf`` race included).
"""

from repro.core.driver import ms_bfs_graft, GraftOptions
from repro.core.forest import ForestState

__all__ = ["ms_bfs_graft", "GraftOptions", "ForestState"]
