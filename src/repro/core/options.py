"""Configuration for the MS-BFS-Graft driver, including backend dispatch."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DeadlineExceeded, ReproError

DISPATCH_WORK_THRESHOLD = 4096
"""Crossover point of the backend cost model (see :func:`repro.core.driver.choose_engine`).

The vectorized backend pays a fixed per-kernel-call overhead (numpy ufunc
dispatch, temporary allocation) that the interpreted backend does not; the
interpreted backend pays a per-edge interpretation cost the vectorized one
amortises. Analogous to the paper's direction rule (top-down while
``|F| < numUnvisitedY / alpha``), the dispatcher therefore picks the
interpreted backend while the run's estimated work ``nnz + n_x + n_y``
is below this threshold. The value is calibrated on ER bipartite graphs
(``random_bipartite(n, n, 4n)``): the measured python/numpy runtime ratio
crosses 1.0 between work ≈ 2,400 (ratio 0.5) and work ≈ 4,800 (ratio 1.0);
``docs/performance.md`` records the calibration table."""

MP_DISPATCH_MIN_WORK = 200_000
"""Work floor for the process-parallel backend (``engine="mp"``).

The process pool adds fixed costs no single-process backend pays: worker
spawn plus shared-segment setup (milliseconds) and, per level, one pipe
round-trip barrier per worker (~0.1 ms each). A run whose total work
``nnz + n_x + n_y`` is below this floor finishes in single-digit
milliseconds on the numpy engine, so there is nothing for extra cores to
win back; above it the per-level scan dominates the barriers and the pool
can profit *when spare cores exist*. The dispatcher therefore requires
both this floor and ``min(workers, available cores) >= 2`` before picking
``mp`` (see :func:`repro.core.driver.choose_engine`); the rmat-14
acceptance graph (work ≈ 290k) sits above the floor by design, and
``benchmarks/BENCH_kernels.json`` records the measured worker scaling
behind it. See ``docs/multicore.md``."""

REORDER_MIN_WORK = 32_768
"""Work floor of the locality term in ``engine="auto"`` dispatch.

Below this, ``--reorder auto`` resolves to ``"none"``: a run this small
either lands on the python engine (where ordering changes nothing the
dispatcher can predict) or finishes in microseconds on numpy, so even a
cache-hit layout lookup is not worth the I/O. Above it, the ordering
changes the engines' deterministic claim trajectory enough to pay for
itself on every measured family — ``benchmarks/BENCH_kernels.json``
records the per-family before/after and ``docs/performance.md`` the
calibration. The floor is deliberately far above
:data:`DISPATCH_WORK_THRESHOLD` so the joint decision never reorders a
graph it would hand to the interpreted backend."""


class Deadline:
    """Cooperative soft deadline for one engine run.

    The engines call :meth:`check` at every phase boundary and raise
    :class:`~repro.errors.DeadlineExceeded` once the budget is spent. Soft
    by design: a phase in flight always completes, so the matching state is
    never torn down mid-kernel — the paper's phase loop is the natural
    preemption point, exactly like its direction-switch decision.

    ``clock`` is injectable (default :func:`time.monotonic`) so the batch
    service's fault injection and the tests can expire deadlines
    deterministically without real waiting.
    """

    __slots__ = ("seconds", "_clock", "_start")

    def __init__(self, seconds: float, *, clock: Callable[[], float] = time.monotonic) -> None:
        if seconds <= 0:
            raise ReproError(f"deadline must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() < 0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed()
        if elapsed - self.seconds > 0:
            where = f" at {context}" if context else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded{where} "
                f"({elapsed:.3f}s elapsed)"
            )

    def __repr__(self) -> str:
        return f"Deadline({self.seconds}s, {self.remaining():.3f}s remaining)"


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of the backend cost model, with its inputs for reporting.

    ``reorder``/``reorder_reason`` are filled by the joint
    ordering+backend decision (``choose_engine(..., reorder="auto")``);
    they default to the no-reorder state so engine-only call sites keep
    constructing decisions unchanged.
    """

    engine: str
    reason: str
    work: int
    threshold: int
    reorder: str = "none"
    reorder_reason: str = ""


@dataclass(frozen=True)
class GraftOptions:
    """Feature flags and tuning knobs of Algorithm 3.

    ``alpha`` is the single threshold of the paper (Section III-B): top-down
    is chosen while ``|F| < numUnvisitedY / alpha``, and grafting is chosen
    while ``|activeX| > |renewableY| / alpha``. The paper found alpha ≈ 5
    best; the ablation bench sweeps it.

    ``direction_optimizing=False`` forces top-down BFS; ``grafting=False``
    forces the destroy-and-rebuild branch — together they turn the algorithm
    into plain MS-BFS (Algorithm 2), which is how the Fig. 7 contribution
    breakdown is measured.
    """

    alpha: float = 5.0
    direction_optimizing: bool = True
    grafting: bool = True
    direction_strategy: str = "vertex"
    """How the top-down/bottom-up switch counts the frontier:

    * ``"vertex"`` — the paper's Algorithm 3 line 9: top-down while
      ``|F| < numUnvisitedY / alpha`` (vertex counts);
    * ``"edge"`` — Beamer's original heuristic: top-down while the
      frontier's out-edge count is below the unvisited side's edge count
      divided by alpha. Degree-weighted, so hub-heavy frontiers switch
      earlier; exposed for the ablation bench.
    """
    record_frontiers: bool = False
    emit_trace: bool = True
    check_invariants: bool = False
    """Run forest invariant assertions every phase (slow; tests only)."""
    deadline: Optional[Deadline] = field(default=None, compare=False)
    """Cooperative soft timeout, checked at every phase boundary.

    When set, the engines raise :class:`~repro.errors.DeadlineExceeded` at
    the first phase boundary past expiry. ``None`` (the default) runs to
    completion. Excluded from equality: two option sets describing the same
    algorithm configuration stay equal regardless of runtime budget.
    """
    phase_hook: Optional[Callable[[int], None]] = field(default=None, compare=False)
    """Called with the 1-based phase number at the start of every phase.

    The batch service's ``slow-phase`` fault injection hangs off this hook;
    it is also a convenient progress callback. Runs *after* the deadline
    check, so an injected delay is charged to the phase it slows down.
    """
    telemetry: Optional[object] = field(default=None, compare=False)
    """Telemetry session (:class:`repro.telemetry.Telemetry`) or ``None``.

    When set, :meth:`begin_phase` opens one span per phase through this
    seam (all three engines share it) and the engines add step spans and
    metrics on top. ``None`` (the default) costs a single attribute check
    per phase — the disabled-overhead bound in the telemetry tests relies
    on this field staying a plain attribute. Excluded from equality, like
    the other runtime-only fields."""
    flight_dir: Optional[str] = field(default=None, compare=False)
    """Directory for crash flight-recorder dumps (mp engine).

    When set, the mp master keeps a bounded ring of per-level events
    (:class:`repro.telemetry.flight.FlightRecorder`) and dumps it here as
    post-mortem JSONL on :class:`~repro.errors.WorkerCrashed` or
    :class:`~repro.errors.DeadlineExceeded` before re-raising. ``None``
    (the default) records nothing. Runtime-only like ``telemetry``, so it
    is excluded from equality."""

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ReproError(f"alpha must be positive, got {self.alpha}")
        if self.direction_strategy not in ("vertex", "edge"):
            raise ReproError(
                f"direction_strategy must be 'vertex' or 'edge', got {self.direction_strategy!r}"
            )

    def begin_phase(self, phase: int) -> None:
        """Phase-boundary bookkeeping, shared by all engines.

        Checks the deadline first (raising
        :class:`~repro.errors.DeadlineExceeded` if the budget is spent),
        then opens the telemetry phase span, then runs the phase hook — in
        that order, so a hook-injected delay (the service's ``slow-phase``
        fault) is charged to the phase span it slows down. Engines call
        this once per phase, right after incrementing the phase counter.
        """
        if self.deadline is not None:
            self.deadline.check(context=f"phase {phase}")
        if self.telemetry is not None:
            self.telemetry.begin_phase(phase)
        if self.phase_hook is not None:
            self.phase_hook(phase)

    @property
    def algorithm_name(self) -> str:
        if self.grafting and self.direction_optimizing:
            return "ms-bfs-graft"
        if self.grafting:
            return "ms-bfs-graft-td"
        if self.direction_optimizing:
            return "ms-bfs-do"
        return "ms-bfs"
