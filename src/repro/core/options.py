"""Configuration for the MS-BFS-Graft driver, including backend dispatch."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

DISPATCH_WORK_THRESHOLD = 4096
"""Crossover point of the backend cost model (see :func:`repro.core.driver.choose_engine`).

The vectorized backend pays a fixed per-kernel-call overhead (numpy ufunc
dispatch, temporary allocation) that the interpreted backend does not; the
interpreted backend pays a per-edge interpretation cost the vectorized one
amortises. Analogous to the paper's direction rule (top-down while
``|F| < numUnvisitedY / alpha``), the dispatcher therefore picks the
interpreted backend while the run's estimated work ``nnz + n_x + n_y``
is below this threshold. The value is calibrated on ER bipartite graphs
(``random_bipartite(n, n, 4n)``): the measured python/numpy runtime ratio
crosses 1.0 between work ≈ 2,400 (ratio 0.5) and work ≈ 4,800 (ratio 1.0);
``docs/performance.md`` records the calibration table."""


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of the backend cost model, with its inputs for reporting."""

    engine: str
    reason: str
    work: int
    threshold: int


@dataclass(frozen=True)
class GraftOptions:
    """Feature flags and tuning knobs of Algorithm 3.

    ``alpha`` is the single threshold of the paper (Section III-B): top-down
    is chosen while ``|F| < numUnvisitedY / alpha``, and grafting is chosen
    while ``|activeX| > |renewableY| / alpha``. The paper found alpha ≈ 5
    best; the ablation bench sweeps it.

    ``direction_optimizing=False`` forces top-down BFS; ``grafting=False``
    forces the destroy-and-rebuild branch — together they turn the algorithm
    into plain MS-BFS (Algorithm 2), which is how the Fig. 7 contribution
    breakdown is measured.
    """

    alpha: float = 5.0
    direction_optimizing: bool = True
    grafting: bool = True
    direction_strategy: str = "vertex"
    """How the top-down/bottom-up switch counts the frontier:

    * ``"vertex"`` — the paper's Algorithm 3 line 9: top-down while
      ``|F| < numUnvisitedY / alpha`` (vertex counts);
    * ``"edge"`` — Beamer's original heuristic: top-down while the
      frontier's out-edge count is below the unvisited side's edge count
      divided by alpha. Degree-weighted, so hub-heavy frontiers switch
      earlier; exposed for the ablation bench.
    """
    record_frontiers: bool = False
    emit_trace: bool = True
    check_invariants: bool = False
    """Run forest invariant assertions every phase (slow; tests only)."""

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ReproError(f"alpha must be positive, got {self.alpha}")
        if self.direction_strategy not in ("vertex", "edge"):
            raise ReproError(
                f"direction_strategy must be 'vertex' or 'edge', got {self.direction_strategy!r}"
            )

    @property
    def algorithm_name(self) -> str:
        if self.grafting and self.direction_optimizing:
            return "ms-bfs-graft"
        if self.grafting:
            return "ms-bfs-graft-td"
        if self.direction_optimizing:
            return "ms-bfs-do"
        return "ms-bfs"
