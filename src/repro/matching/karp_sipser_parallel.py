"""Round-based (parallel-semantics) Karp-Sipser initialiser.

The paper initialises its experiments with the *multithreaded* Karp-Sipser
of Azad et al. [4], which differs from the serial heuristic in an important
way: degree-1 vertices are processed in concurrent *rounds* (all current
degree-1 vertices claim their unique neighbour simultaneously; conflicting
claims leave losers unmatched), and the random-edge fallback likewise runs
as simultaneous proposals. The rounds lose some of the serial algorithm's
cascading precision, so the produced matching is slightly smaller — which
is precisely why the paper's maximum-matching phase still has work to do on
every graph class.

This module reproduces those round semantics deterministically (claims are
resolved by a seeded priority), giving the benchmark suite an initial
matching of realistic parallel-KS quality. The serial heuristic lives in
:mod:`repro.matching.karp_sipser`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching.base import MatchResult, Matching, init_matching
from repro.util.rng import SeedLike, as_rng


def karp_sipser_parallel(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    seed: SeedLike = 0,
    max_degree_one_rounds: int | None = None,
) -> MatchResult:
    """Karp-Sipser with parallel round semantics (vectorized).

    Each iteration:

    1. *degree-1 rounds* — every current degree-1 vertex proposes to its
       unique free neighbour; one proposer per target wins (seeded random
       priority), all winners match simultaneously;
    2. when no degree-1 vertex remains, one *random proposal round* — every
       free X vertex proposes to a uniformly random free neighbour; winners
       match simultaneously;

    until no free vertex has a free neighbour. ``max_degree_one_rounds``
    caps step 1 per iteration (the real implementation's threads interleave
    rule-1 and random matches; a low cap emulates more interleaving and
    yields slightly lower quality).
    """
    start = time.perf_counter()
    rng = as_rng(seed)
    matching = init_matching(graph, initial)
    counters = Counters()
    n_x, n_y = graph.n_x, graph.n_y
    x_ptr, x_adj = graph.x_ptr, graph.x_adj
    y_ptr, y_adj = graph.y_ptr, graph.y_adj
    mate_x = matching.mate_x
    mate_y = matching.mate_y
    edges = 0

    free_x = mate_x == -1
    free_y = mate_y == -1

    def residual_degrees() -> tuple[np.ndarray, np.ndarray]:
        """Degrees counting only free opposite endpoints (full recount).

        The parallel implementation keeps approximate counters; a recount
        per round is equivalent and vectorizes cleanly.
        """
        nonlocal edges
        deg_x = np.zeros(n_x, dtype=np.int64)
        np.add.at(deg_x, _edge_sources_x(), free_y[x_adj].astype(np.int64))
        deg_y = np.zeros(n_y, dtype=np.int64)
        np.add.at(deg_y, _edge_sources_y(), free_x[y_adj].astype(np.int64))
        deg_x[~free_x] = 0
        deg_y[~free_y] = 0
        edges += graph.num_directed_edges
        return deg_x, deg_y

    src_x_cache: list[np.ndarray] = []
    src_y_cache: list[np.ndarray] = []

    def _edge_sources_x() -> np.ndarray:
        if not src_x_cache:
            src_x_cache.append(
                np.repeat(np.arange(n_x, dtype=INDEX_DTYPE), np.diff(x_ptr))
            )
        return src_x_cache[0]

    def _edge_sources_y() -> np.ndarray:
        if not src_y_cache:
            src_y_cache.append(
                np.repeat(np.arange(n_y, dtype=INDEX_DTYPE), np.diff(y_ptr))
            )
        return src_y_cache[0]

    def first_free_neighbor_x(xs: np.ndarray) -> np.ndarray:
        """For each x, a free neighbour (the first) or -1."""
        out = np.full(xs.shape[0], -1, dtype=INDEX_DTYPE)
        for i, x in enumerate(xs):  # rows are degree-1-ish: cheap scans
            row = x_adj[x_ptr[x] : x_ptr[x + 1]]
            hits = row[free_y[row]]
            if hits.size:
                out[i] = hits[0]
        return out

    def first_free_neighbor_y(ys: np.ndarray) -> np.ndarray:
        out = np.full(ys.shape[0], -1, dtype=INDEX_DTYPE)
        for i, y in enumerate(ys):
            row = y_adj[y_ptr[y] : y_ptr[y + 1]]
            hits = row[free_x[row]]
            if hits.size:
                out[i] = hits[0]
        return out

    def resolve(proposers: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """One winner per target, chosen by seeded random priority."""
        if proposers.size == 0:
            return np.empty(0, dtype=np.int64)
        priority = rng.permutation(proposers.shape[0])
        order = np.argsort(targets[priority], kind="stable")
        t_sorted = targets[priority][order]
        keep = np.ones(t_sorted.shape[0], dtype=bool)
        keep[1:] = t_sorted[1:] != t_sorted[:-1]
        return priority[order][keep]

    while True:
        deg_x, deg_y = residual_degrees()
        progressed = False

        # --- degree-1 rounds ------------------------------------------- #
        rounds = 0
        while True:
            if max_degree_one_rounds is not None and rounds >= max_degree_one_rounds:
                break
            ones_x = np.flatnonzero(free_x & (deg_x == 1))
            ones_y = np.flatnonzero(free_y & (deg_y == 1))
            if ones_x.size == 0 and ones_y.size == 0:
                break
            rounds += 1
            tx = first_free_neighbor_x(ones_x)
            ty = first_free_neighbor_y(ones_y)
            edges += int(ones_x.size + ones_y.size)
            # Combine both sides' proposals into (x, y) pairs.
            px = np.concatenate([ones_x[tx != -1], ty[ty != -1]])
            py = np.concatenate([tx[tx != -1], ones_y[ty != -1]])
            if px.size == 0:
                break
            # A vertex may appear as both proposer and target across sides;
            # resolve per-y first, then drop duplicate x's.
            win = resolve(px, py)
            wx, wy = px[win], py[win]
            _, first = np.unique(wx, return_index=True)
            wx, wy = wx[first], wy[first]
            still = free_x[wx] & free_y[wy]
            wx, wy = wx[still], wy[still]
            if wx.size == 0:
                break
            mate_x[wx] = wy
            mate_y[wy] = wx
            free_x[wx] = False
            free_y[wy] = False
            progressed = True
            # Recount degrees after the simultaneous round.
            deg_x, deg_y = residual_degrees()

        # --- one random proposal round --------------------------------- #
        candidates = np.flatnonzero(free_x & (deg_x > 0))
        if candidates.size == 0:
            if not progressed:
                break
            continue
        # Every free x proposes a random free neighbour.
        proposals = np.full(candidates.shape[0], -1, dtype=INDEX_DTYPE)
        for i, x in enumerate(candidates):
            row = x_adj[x_ptr[x] : x_ptr[x + 1]]
            hits = row[free_y[row]]
            edges += int(row.shape[0])
            if hits.size:
                proposals[i] = hits[rng.integers(0, hits.size)]
        valid = proposals != -1
        px, py = candidates[valid], proposals[valid]
        win = resolve(px, py)
        wx, wy = px[win], py[win]
        mate_x[wx] = wy
        mate_y[wy] = wx
        free_x[wx] = False
        free_y[wy] = False
        counters.phases += 1

    counters.edges_traversed = edges
    return MatchResult(
        matching=matching,
        algorithm="karp-sipser-parallel",
        counters=counters,
        wall_seconds=time.perf_counter() - start,
    )
