"""Pothen-Fan: multi-source DFS with lookahead (and fairness).

The PF algorithm runs in phases. In each phase it starts a DFS from every
unmatched X vertex; Y-side visited flags are shared across the phase's
searches, so the discovered augmenting paths are vertex-disjoint and each is
applied immediately. Two classic refinements:

* **lookahead** — before descending, a vertex first checks whether any of
  its neighbours is free, using a monotone per-vertex cursor (amortised
  O(m) over the whole run);
* **fairness** — adjacency lists are scanned in alternating direction on
  alternating phases, avoiding systematically unlucky orderings (this is
  the "PF with fairness" variant the paper compares against).

The parallel PF of Azad et al. assigns whole DFS trees to threads — a
coarse-grained decomposition. The emitted work trace therefore has one item
per root per phase (cost = edges that root's search traversed) scheduled
dynamically, which is exactly why PF shows load imbalance and high
run-to-run variability in the paper's Figs. 3 and Section V-B.
"""

from __future__ import annotations

import time

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching
from repro.parallel.trace import WorkTrace


def pothen_fan(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    fairness: bool = True,
    lookahead: bool = True,
    emit_trace: bool = True,
) -> MatchResult:
    """Maximum matching with the Pothen-Fan algorithm."""
    start = time.perf_counter()
    matching = init_matching(graph, initial)
    counters = Counters()
    x_ptr, x_adj, _, _ = adjacency_lists(graph)
    n_x = graph.n_x
    mate_x = matching.mate_x.tolist()
    mate_y = matching.mate_y.tolist()
    visited = [0] * graph.n_y  # visited[y] == phase number
    la_ptr = [x_ptr[x] for x in range(n_x)]  # monotone lookahead cursors
    trace = WorkTrace() if emit_trace else None
    edges = 0
    claims = 0
    phase = 0

    def lookahead_scan(x: int) -> int:
        """Advance x's lookahead cursor to a free neighbour; -1 if none."""
        nonlocal edges
        i = la_ptr[x]
        end = x_ptr[x + 1]
        while i < end:
            edges += 1
            y = x_adj[i]
            if mate_y[y] == -1:
                la_ptr[x] = i  # stay: y will be matched, cursor moves next call
                return y
            i += 1
        la_ptr[x] = i
        return -1

    def dfs(x0: int, reverse: bool) -> int:
        """One PF search; returns augmenting path length in edges, 0 if none."""
        nonlocal edges, claims
        if lookahead:
            y = lookahead_scan(x0)
            if y != -1:
                visited[y] = phase
                claims += 1
                mate_x[x0] = y
                mate_y[y] = x0
                return 1
        # Stack frames: [x, next_slot, chosen_y]; slots walk forward or
        # backward depending on the fairness direction.
        step = -1 if reverse else 1
        first = (x_ptr[x0 + 1] - 1) if reverse else x_ptr[x0]
        stack = [[x0, first, -1]]
        while stack:
            frame = stack[-1]
            x, i = frame[0], frame[1]
            if (reverse and i < x_ptr[x]) or (not reverse and i >= x_ptr[x + 1]):
                stack.pop()
                continue
            frame[1] = i + step
            edges += 1
            y = x_adj[i]
            if visited[y] == phase:
                continue
            mate = mate_y[y]
            if mate == -1:
                # Only reachable when lookahead is disabled (lookahead would
                # have caught a free neighbour before the descent).
                visited[y] = phase
                claims += 1
                frame[2] = y
                for fx, _, fy in stack:
                    mate_x[fx] = fy
                    mate_y[fy] = fx
                return 2 * len(stack) - 1
            visited[y] = phase
            claims += 1
            if lookahead:
                y2 = lookahead_scan(mate)
                if y2 != -1:
                    visited[y2] = phase
                    claims += 1
                    frame[2] = y
                    stack.append([mate, 0, y2])
                    for fx, _, fy in stack:
                        mate_x[fx] = fy
                        mate_y[fy] = fx
                    return 2 * len(stack) - 1
            frame[2] = y
            nxt = (x_ptr[mate + 1] - 1) if reverse else x_ptr[mate]
            stack.append([mate, nxt, -1])
        return 0

    while True:
        phase += 1
        counters.phases += 1
        reverse = fairness and (phase % 2 == 0)
        roots = [x for x in range(n_x) if mate_x[x] == -1]
        augmented = 0
        claims = 0
        root_costs = []
        for x0 in roots:
            before = edges
            length = dfs(x0, reverse)
            root_costs.append(edges - before + 1)
            if length:
                counters.record_path(length)
                augmented += 1
        if trace is not None:
            trace.add(
                "dfs",
                root_costs,
                schedule="dynamic",
                atomics=claims,
                memory_pattern="irregular",
            )
        if augmented == 0:
            break

    matching.mate_x[:] = mate_x
    matching.mate_y[:] = mate_y
    counters.edges_traversed = edges
    return MatchResult(
        matching=matching,
        algorithm="pothen-fan" if fairness else "pothen-fan-nofair",
        counters=counters,
        trace=trace,
        wall_seconds=time.perf_counter() - start,
    )
