"""Incremental (dynamic) maximum matching.

Downstream users of BTF/structural-rank pipelines often edit the matrix
pattern one entry at a time (circuit edits, symbolic factorisation updates)
and need the maximum matching maintained without recomputing from scratch.
Classic observation: inserting an edge can raise the matching number by at
most one, and deleting an edge can lower it by at most one — so one
augmenting-path search per update suffices.

:class:`IncrementalMatcher` keeps an adjacency-set representation (the CSR
graph is immutable by design) plus a matching, and repairs optimality after
each update with a single alternating BFS. Every public operation keeps
the invariant "current matching is maximum for the current graph", which
the property tests check against from-scratch recomputation after random
update sequences.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.core.bitset import bitset_set, bitset_test, bitset_words
from repro.errors import MatchingError
from repro.graph.builder import from_edges
from repro.graph.csr import BipartiteCSR
from repro.matching.base import UNMATCHED, Matching


class IncrementalMatcher:
    """Maximum matching maintained under edge insertions and deletions."""

    def __init__(self, n_x: int, n_y: int) -> None:
        if n_x < 0 or n_y < 0:
            raise MatchingError(f"negative vertex counts: ({n_x}, {n_y})")
        self.n_x = n_x
        self.n_y = n_y
        self.adj_x: List[Set[int]] = [set() for _ in range(n_x)]
        self.adj_y: List[Set[int]] = [set() for _ in range(n_y)]
        self.mate_x = [UNMATCHED] * n_x
        self.mate_y = [UNMATCHED] * n_y

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: BipartiteCSR) -> "IncrementalMatcher":
        """Start from an existing graph (matching computed from scratch)."""
        matcher = cls(graph.n_x, graph.n_y)
        from repro.core.driver import ms_bfs_graft

        result = ms_bfs_graft(graph, emit_trace=False)
        for x, y in graph.edges():
            matcher.adj_x[x].add(y)
            matcher.adj_y[y].add(x)
        matcher.mate_x = result.matching.mate_x.tolist()
        matcher.mate_y = result.matching.mate_y.tolist()
        return matcher

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def cardinality(self) -> int:
        return sum(1 for m in self.mate_x if m != UNMATCHED)

    def has_edge(self, x: int, y: int) -> bool:
        self._check(x, y)
        return y in self.adj_x[x]

    def matching(self) -> Matching:
        """Snapshot of the current matching."""
        return Matching(
            self.n_x,
            self.n_y,
            np.asarray(self.mate_x, dtype=np.int64),
            np.asarray(self.mate_y, dtype=np.int64),
        )

    def graph(self) -> BipartiteCSR:
        """Snapshot of the current graph as an immutable CSR."""
        edges = [(x, y) for x in range(self.n_x) for y in self.adj_x[x]]
        return from_edges(self.n_x, self.n_y, edges)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def add_edge(self, x: int, y: int) -> bool:
        """Insert edge (x, y); returns True if the matching grew.

        Insertion raises the matching number by at most one, and any new
        augmenting path must use the new edge — possibly in its *middle*
        (both endpoints matched, reached through their mates), so freeness
        of x or y is not required. One multi-source alternating BFS decides.
        """
        self._check(x, y)
        if y in self.adj_x[x]:
            return False
        self.adj_x[x].add(y)
        self.adj_y[y].add(x)
        return self._augment_once()

    def remove_edge(self, x: int, y: int) -> bool:
        """Delete edge (x, y); returns True if the matching shrank.

        If the edge was matched, unmatch it and try to re-augment from the
        freed X endpoint; failing that the matching number genuinely drops.
        """
        self._check(x, y)
        if y not in self.adj_x[x]:
            return False
        self.adj_x[x].discard(y)
        self.adj_y[y].discard(x)
        if self.mate_x[x] != y:
            return False  # unmatched edge: matching untouched, still maximum
        self.mate_x[x] = UNMATCHED
        self.mate_y[y] = UNMATCHED
        # The shrunken matching is maximum iff no augmenting path exists
        # now; one search restores optimality either way.
        return not self._augment_once()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check(self, x: int, y: int) -> None:
        if not (0 <= x < self.n_x and 0 <= y < self.n_y):
            raise MatchingError(f"edge ({x}, {y}) out of range")

    def _augment_once(self) -> bool:
        """One multi-source alternating BFS; augments and returns True on
        success. Because the matching was maximum before the last update,
        at most one augmenting path can exist, so a single pass suffices.

        Visited Y vertices are tracked in the same bit-packed uint64 words
        the engines use (:mod:`repro.core.bitset`), not a per-vertex hash
        set: the packed mirror is the representation every other BFS in the
        repo consults, its footprint is a fixed ``ceil(n_y / 64)`` words
        per repair instead of a dict that rehashes as the frontier grows,
        and testing it here keeps the incremental path covered by the same
        visited semantics the kernel differential suite certifies.
        """
        visited = bitset_words(self.n_y)
        parent = np.full(self.n_y, UNMATCHED, dtype=np.int64)
        frontier = [x for x in range(self.n_x) if self.mate_x[x] == UNMATCHED]
        end_y = -1
        while frontier and end_y == -1:
            next_frontier: List[int] = []
            for x in frontier:
                for y in self.adj_x[x]:
                    if bitset_test(visited, y):
                        continue
                    bitset_set(visited, y)
                    parent[y] = x
                    mate = self.mate_y[y]
                    if mate == UNMATCHED:
                        end_y = y
                        break
                    next_frontier.append(mate)
                if end_y != -1:
                    break
            frontier = next_frontier
        if end_y == -1:
            return False
        y = end_y
        while True:
            x = int(parent[y])
            prev = self.mate_x[x]
            self.mate_x[x] = y
            self.mate_y[y] = x
            if prev == UNMATCHED:
                return True
            y = prev
