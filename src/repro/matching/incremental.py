"""Incremental (dynamic) maximum matching.

Downstream users of BTF/structural-rank pipelines often edit the matrix
pattern one entry at a time (circuit edits, symbolic factorisation updates)
and need the maximum matching maintained without recomputing from scratch.
Classic observation: inserting an edge can raise the matching number by at
most one, and deleting an edge can lower it by at most one — so one
augmenting-path search per update suffices.

:class:`IncrementalMatcher` keeps an adjacency-set representation (the CSR
graph is immutable by design) plus a matching, and repairs optimality after
each update with a single alternating BFS. Every public operation keeps
the invariant "current matching is maximum for the current graph", which
the property tests check against from-scratch recomputation after random
update sequences.

For streaming workloads (the online matching daemon in
:mod:`repro.service.online`) the per-update repair is too expensive: every
single-edge update pays one multi-source BFS seeded from *every* free X
vertex. :meth:`IncrementalMatcher.apply_batch` instead applies a whole
batch of inserts/deletes structurally and then repairs once, reusing the
paper's MS-BFS idea: each sweep is one multi-source alternating BFS that
extracts a maximal set of *vertex-disjoint* augmenting paths, and sweeps
repeat until none remains. A batch of B updates therefore costs
``O(paths + 1)`` graph sweeps instead of ``O(B)`` — the win the online
augmenting-path literature (PAPERS.md: *A Tight Bound for Shortest
Augmenting Paths on Trees*) predicts for this regime.

Correctness note on seeding: a first repair round runs seeded only from
free X vertices the batch touched (endpoints of inserted edges, X vertices
freed by deleting a matched edge) — that is where repairs concentrate.
Seeding alone is *not* sufficient, though: an inserted edge can sit in the
middle of an augmenting path whose free endpoints the batch never touched
(and deleting a matched edge frees a Y vertex that an untouched free X may
now reach). The repair loop therefore always finishes with global sweeps
from every free X vertex until one finds nothing, which by Berge's theorem
certifies the matching maximum. The differential suite in
``tests/matching/test_incremental_batch.py`` checks this against
from-scratch :func:`~repro.core.driver.ms_bfs_graft` recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bitset import bitset_set, bitset_test, bitset_words
from repro.errors import MatchingError
from repro.graph.builder import from_edges
from repro.graph.csr import BipartiteCSR
from repro.matching.base import UNMATCHED, Matching

INSERT = "insert"
DELETE = "delete"
_OP_ALIASES = {
    INSERT: INSERT, "+": INSERT, "add": INSERT,
    DELETE: DELETE, "-": DELETE, "remove": DELETE, "del": DELETE,
}


@dataclass(frozen=True)
class BatchRepairStats:
    """What one :meth:`IncrementalMatcher.apply_batch` call did.

    ``bfs_rounds`` counts multi-source BFS sweeps (including the final
    empty sweep that certifies maximality) — the batched-repair cost unit
    the benchmark compares against one sweep *per update* in the per-edge
    path.
    """

    inserted: int
    deleted: int
    skipped: int
    freed: int
    augmented: int
    bfs_rounds: int
    cardinality: int

    def to_dict(self) -> dict:
        return {
            "inserted": self.inserted, "deleted": self.deleted,
            "skipped": self.skipped, "freed": self.freed,
            "augmented": self.augmented, "bfs_rounds": self.bfs_rounds,
            "cardinality": self.cardinality,
        }


class IncrementalMatcher:
    """Maximum matching maintained under edge insertions and deletions."""

    def __init__(self, n_x: int, n_y: int) -> None:
        if n_x < 0 or n_y < 0:
            raise MatchingError(f"negative vertex counts: ({n_x}, {n_y})")
        self.n_x = n_x
        self.n_y = n_y
        self.adj_x: List[Set[int]] = [set() for _ in range(n_x)]
        self.adj_y: List[Set[int]] = [set() for _ in range(n_y)]
        self.mate_x = [UNMATCHED] * n_x
        self.mate_y = [UNMATCHED] * n_y

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: BipartiteCSR) -> "IncrementalMatcher":
        """Start from an existing graph (matching computed from scratch)."""
        matcher = cls(graph.n_x, graph.n_y)
        from repro.core.driver import ms_bfs_graft

        result = ms_bfs_graft(graph, emit_trace=False)
        for x, y in graph.edges():
            matcher.adj_x[x].add(y)
            matcher.adj_y[y].add(x)
        matcher.mate_x = result.matching.mate_x.tolist()
        matcher.mate_y = result.matching.mate_y.tolist()
        return matcher

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def cardinality(self) -> int:
        return sum(1 for m in self.mate_x if m != UNMATCHED)

    def has_edge(self, x: int, y: int) -> bool:
        self._check(x, y)
        return y in self.adj_x[x]

    def matching(self) -> Matching:
        """Snapshot of the current matching."""
        return Matching(
            self.n_x,
            self.n_y,
            np.asarray(self.mate_x, dtype=np.int64),
            np.asarray(self.mate_y, dtype=np.int64),
        )

    def edge_list(self) -> List[Tuple[int, int]]:
        """Canonical (sorted) edge list of the current graph.

        Python-set iteration order depends on each set's insert/delete
        *history* (and, in general, on the hash seed), so the raw adjacency
        sets must never leak into anything persisted or hashed — snapshots
        and content-addressed cache keys go through this sorted view.
        """
        return [(x, y) for x in range(self.n_x) for y in sorted(self.adj_x[x])]

    def graph(self) -> BipartiteCSR:
        """Snapshot of the current graph as an immutable CSR.

        Adjacency is sorted before :func:`from_edges` so two matchers
        holding the same edge set produce bit-identical snapshots
        regardless of how their adjacency sets were built up.
        """
        return from_edges(self.n_x, self.n_y, self.edge_list())

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def add_edge(self, x: int, y: int) -> bool:
        """Insert edge (x, y); returns True if the matching grew.

        Insertion raises the matching number by at most one, and any new
        augmenting path must use the new edge — possibly in its *middle*
        (both endpoints matched, reached through their mates), so freeness
        of x or y is not required. One multi-source alternating BFS decides.
        """
        self._check(x, y)
        if y in self.adj_x[x]:
            return False
        self.adj_x[x].add(y)
        self.adj_y[y].add(x)
        return self._augment_once()

    def remove_edge(self, x: int, y: int) -> bool:
        """Delete edge (x, y); returns True if the matching shrank.

        If the edge was matched, unmatch it and try to re-augment from the
        freed X endpoint; failing that the matching number genuinely drops.
        """
        self._check(x, y)
        if y not in self.adj_x[x]:
            return False
        self.adj_x[x].discard(y)
        self.adj_y[y].discard(x)
        if self.mate_x[x] != y:
            return False  # unmatched edge: matching untouched, still maximum
        self.mate_x[x] = UNMATCHED
        self.mate_y[y] = UNMATCHED
        # The shrunken matching is maximum iff no augmenting path exists
        # now; one search restores optimality either way.
        return not self._augment_once()

    # ------------------------------------------------------------------ #
    # batched updates
    # ------------------------------------------------------------------ #

    def apply_batch(
        self,
        updates: Iterable[Sequence],
        *,
        deadline: Optional[object] = None,
    ) -> BatchRepairStats:
        """Apply a batch of updates, then repair optimality once.

        ``updates`` is an iterable of ``(op, x, y)`` with ``op`` one of
        ``"insert"``/``"+"``/``"add"`` or ``"delete"``/``"-"``/``"remove"``.
        Updates are applied structurally *in order* (so a duplicate
        insert-then-delete of the same edge within one batch nets out to
        absent), matched deleted edges are unmatched, and a single repair
        phase then restores maximality: a seeded fast round from the free X
        vertices the batch touched, followed by global multi-source sweeps
        until one finds no augmenting path.

        ``deadline`` is an optional cooperative :class:`~repro.core.options.
        Deadline`; it is checked between BFS sweeps (the natural preemption
        point, mirroring the engines' phase boundaries). On expiry the
        structural updates are already applied and the matching is valid
        but possibly non-maximum — callers retrying after
        :class:`~repro.errors.DeadlineExceeded` should re-repair with an
        empty batch.
        """
        inserted = deleted = skipped = freed = 0
        touched: Set[int] = set()
        for entry in updates:
            try:
                op_raw, x, y = entry
            except (TypeError, ValueError):
                raise MatchingError(
                    f"batch update must be (op, x, y), got {entry!r}"
                ) from None
            op = _OP_ALIASES.get(str(op_raw).lower())
            if op is None:
                raise MatchingError(
                    f"unknown batch op {op_raw!r}; use 'insert' or 'delete'"
                )
            x, y = int(x), int(y)
            self._check(x, y)
            if op == INSERT:
                if y in self.adj_x[x]:
                    skipped += 1
                    continue
                self.adj_x[x].add(y)
                self.adj_y[y].add(x)
                inserted += 1
                touched.add(x)
            else:
                if y not in self.adj_x[x]:
                    skipped += 1
                    continue
                self.adj_x[x].discard(y)
                self.adj_y[y].discard(x)
                deleted += 1
                if self.mate_x[x] == y:
                    self.mate_x[x] = UNMATCHED
                    self.mate_y[y] = UNMATCHED
                    freed += 1
                touched.add(x)
        augmented, rounds = self._repair(touched, deadline=deadline)
        return BatchRepairStats(
            inserted=inserted, deleted=deleted, skipped=skipped, freed=freed,
            augmented=augmented, bfs_rounds=rounds,
            cardinality=self.cardinality,
        )

    def repair(self, *, deadline: Optional[object] = None) -> BatchRepairStats:
        """Re-run the repair phase alone (e.g. after a deadline expiry)."""
        return self.apply_batch((), deadline=deadline)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check(self, x: int, y: int) -> None:
        if not (0 <= x < self.n_x and 0 <= y < self.n_y):
            raise MatchingError(f"edge ({x}, {y}) out of range")

    def _augment_once(self) -> bool:
        """One multi-source alternating BFS; augments and returns True on
        success. Because the matching was maximum before the last update,
        at most one augmenting path can exist, so a single pass suffices.

        Visited Y vertices are tracked in the same bit-packed uint64 words
        the engines use (:mod:`repro.core.bitset`), not a per-vertex hash
        set: the packed mirror is the representation every other BFS in the
        repo consults, its footprint is a fixed ``ceil(n_y / 64)`` words
        per repair instead of a dict that rehashes as the frontier grows,
        and testing it here keeps the incremental path covered by the same
        visited semantics the kernel differential suite certifies.
        """
        visited = bitset_words(self.n_y)
        parent = np.full(self.n_y, UNMATCHED, dtype=np.int64)
        frontier = [x for x in range(self.n_x) if self.mate_x[x] == UNMATCHED]
        end_y = -1
        while frontier and end_y == -1:
            next_frontier: List[int] = []
            for x in frontier:
                for y in self.adj_x[x]:
                    if bitset_test(visited, y):
                        continue
                    bitset_set(visited, y)
                    parent[y] = x
                    mate = self.mate_y[y]
                    if mate == UNMATCHED:
                        end_y = y
                        break
                    next_frontier.append(mate)
                if end_y != -1:
                    break
            frontier = next_frontier
        if end_y == -1:
            return False
        y = end_y
        while True:
            x = int(parent[y])
            prev = self.mate_x[x]
            self.mate_x[x] = y
            self.mate_y[y] = x
            if prev == UNMATCHED:
                return True
            y = prev

    def _repair(
        self, touched: Set[int], *, deadline: Optional[object] = None
    ) -> Tuple[int, int]:
        """Restore maximality after a batch; returns ``(augmented, sweeps)``.

        Round one is seeded from the batch-touched free X vertices only —
        cheap when the batch perturbs a small region. The loop then runs
        global sweeps (every free X vertex) to fixpoint, which is what
        makes the result *provably* maximum: inserted edges can sit mid-path
        between untouched free endpoints, so touched-only seeding alone
        would under-match (see the module docstring).
        """
        augmented = 0
        rounds = 0
        seeds = sorted(x for x in touched if self.mate_x[x] == UNMATCHED)
        while seeds:
            if deadline is not None:
                deadline.check("incremental batch repair (seeded sweep)")
            rounds += 1
            found = self._augment_sweep(seeds)
            augmented += found
            if not found:
                break
            seeds = [x for x in seeds if self.mate_x[x] == UNMATCHED]
        while True:
            if deadline is not None:
                deadline.check("incremental batch repair (global sweep)")
            rounds += 1
            found = self._augment_sweep(None)
            augmented += found
            if not found:
                return augmented, rounds

    def _augment_sweep(self, seeds: Optional[Sequence[int]]) -> int:
        """One multi-source alternating BFS; augments a maximal set of
        vertex-disjoint augmenting paths and returns how many.

        ``seeds`` restricts the BFS sources (they must be free X vertices);
        ``None`` seeds from every free X vertex. Unlike
        :meth:`_augment_once` the sweep does not stop at the first free Y
        reached — it records parents for the whole reachable region, then
        greedily extracts disjoint paths from every free Y endpoint found,
        skipping endpoints whose walk-back runs into an X vertex already
        flipped this sweep (those are re-found by the next sweep).
        """
        visited = bitset_words(self.n_y)
        parent = np.full(self.n_y, UNMATCHED, dtype=np.int64)
        if seeds is None:
            frontier = [x for x in range(self.n_x) if self.mate_x[x] == UNMATCHED]
        else:
            frontier = list(seeds)
        free_ys: List[int] = []
        while frontier:
            next_frontier: List[int] = []
            for x in frontier:
                for y in self.adj_x[x]:
                    if bitset_test(visited, y):
                        continue
                    bitset_set(visited, y)
                    parent[y] = x
                    mate = self.mate_y[y]
                    if mate == UNMATCHED:
                        free_ys.append(y)
                    else:
                        next_frontier.append(mate)
            frontier = next_frontier
        augmented = 0
        used_x: Set[int] = set()
        for end_y in free_ys:
            path: List[Tuple[int, int]] = []
            y = end_y
            ok = True
            while True:
                x = int(parent[y])
                if x in used_x:
                    ok = False
                    break
                path.append((x, y))
                prev = int(self.mate_x[x])
                if prev == UNMATCHED:
                    break
                y = prev
            if not ok:
                continue
            for x, y in path:
                used_x.add(x)
                self.mate_x[x] = y
                self.mate_y[y] = x
            augmented += 1
        return augmented
