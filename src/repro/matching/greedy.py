"""First-fit greedy maximal matching.

The simplest O(m) initialiser: scan X vertices in (optionally shuffled)
order and match each to its first free neighbour. Guarantees cardinality at
least half the maximum; used in tests and as an ablation alternative to
Karp-Sipser (``bench_ablation_init``).
"""

from __future__ import annotations

import time

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching
from repro.util.rng import SeedLike, as_rng


def greedy_matching(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    shuffle: bool = False,
    order: str = "input",
    seed: SeedLike = 0,
) -> MatchResult:
    """Greedy maximal matching.

    ``order`` selects the X scan order: ``"input"`` (vertex id),
    ``"random"`` (equivalent to ``shuffle=True``), or ``"mindegree"``
    (ascending degree — the classic refinement that matches constrained
    vertices first and typically leaves a smaller deficit).
    """
    start = time.perf_counter()
    if order not in ("input", "random", "mindegree"):
        raise ValueError(f"unknown greedy order {order!r}")
    matching = init_matching(graph, initial)
    counters = Counters()
    x_ptr, x_adj, _, _ = adjacency_lists(graph)
    mate_x = matching.mate_x
    mate_y = matching.mate_y
    edges = 0
    scan = range(graph.n_x)
    if shuffle or order == "random":
        scan = as_rng(seed).permutation(graph.n_x).tolist()
    elif order == "mindegree":
        import numpy as np

        scan = np.argsort(graph.degree_x(), kind="stable").tolist()
    for x in scan:
        if mate_x[x] != -1:
            continue
        for i in range(x_ptr[x], x_ptr[x + 1]):
            edges += 1
            y = x_adj[i]
            if mate_y[y] == -1:
                mate_x[x] = y
                mate_y[y] = x
                break
    counters.edges_traversed = edges
    counters.phases = 1
    return MatchResult(
        matching=matching,
        algorithm="greedy",
        counters=counters,
        wall_seconds=time.perf_counter() - start,
    )
