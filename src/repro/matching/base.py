"""Matching state and algorithm result types.

A matching is stored as two mate arrays, following the paper's Algorithm 3
input convention (``mate[u] = -1`` for unmatched ``u``), split per side so
every array indexes a single vertex space:

* ``mate_x[x]`` — the Y partner of x, or -1;
* ``mate_y[y]`` — the X partner of y, or -1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import MatchingError
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.instrument.counters import Counters
from repro.instrument.frontier import FrontierLog
from repro.parallel.trace import WorkTrace

UNMATCHED = -1
"""Sentinel for unmatched vertices / unset pointers, as in the paper."""


class Matching:
    """A (partial) matching of a bipartite graph."""

    __slots__ = ("n_x", "n_y", "mate_x", "mate_y")

    def __init__(self, n_x: int, n_y: int, mate_x: np.ndarray, mate_y: np.ndarray) -> None:
        self.n_x = int(n_x)
        self.n_y = int(n_y)
        self.mate_x = np.ascontiguousarray(mate_x, dtype=INDEX_DTYPE)
        self.mate_y = np.ascontiguousarray(mate_y, dtype=INDEX_DTYPE)
        if self.mate_x.shape != (self.n_x,) or self.mate_y.shape != (self.n_y,):
            raise MatchingError("mate array shapes do not match vertex counts")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, graph_or_nx: BipartiteCSR | int, n_y: int | None = None) -> "Matching":
        """The empty matching for a graph (or explicit ``(n_x, n_y)``)."""
        if isinstance(graph_or_nx, BipartiteCSR):
            n_x, n_y = graph_or_nx.n_x, graph_or_nx.n_y
        else:
            n_x = int(graph_or_nx)
            if n_y is None:
                raise MatchingError("Matching.empty(n_x, n_y) needs both counts")
        return cls(
            n_x,
            int(n_y),
            np.full(n_x, UNMATCHED, dtype=INDEX_DTYPE),
            np.full(int(n_y), UNMATCHED, dtype=INDEX_DTYPE),
        )

    @classmethod
    def from_pairs(
        cls, n_x: int, n_y: int, pairs: Iterable[Tuple[int, int]]
    ) -> "Matching":
        """Build from explicit ``(x, y)`` pairs; rejects conflicting pairs."""
        matching = cls.empty(n_x, n_y)
        for x, y in pairs:
            if matching.mate_x[x] != UNMATCHED or matching.mate_y[y] != UNMATCHED:
                raise MatchingError(f"vertex reused in matching pairs at ({x}, {y})")
            matching.match(int(x), int(y))
        return matching

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def match(self, x: int, y: int) -> None:
        """Add edge (x, y) to the matching (endpoints must be free)."""
        if self.mate_x[x] != UNMATCHED or self.mate_y[y] != UNMATCHED:
            raise MatchingError(f"match({x}, {y}) would double-match a vertex")
        self.mate_x[x] = y
        self.mate_y[y] = x

    def unmatch(self, x: int) -> None:
        """Remove x's matched edge (no-op if x is free)."""
        y = self.mate_x[x]
        if y != UNMATCHED:
            self.mate_x[x] = UNMATCHED
            self.mate_y[y] = UNMATCHED

    def augment_pairs(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Overwrite mate pointers along an augmenting path's new edges.

        Unlike :meth:`match` this allows overwriting previously matched
        endpoints — the caller guarantees the pairs come from alternating
        path flips, which keep the matching consistent overall.
        """
        for x, y in pairs:
            self.mate_x[x] = y
            self.mate_y[y] = x

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def cardinality(self) -> int:
        return int(np.count_nonzero(self.mate_x != UNMATCHED))

    def matching_fraction(self) -> float:
        """``2|M| / |V|`` — the paper's "matching number as a fraction of
        the number of vertices" (1.0 iff the matching is perfect)."""
        n = self.n_x + self.n_y
        return (2.0 * self.cardinality / n) if n else 0.0

    def unmatched_x(self) -> np.ndarray:
        return np.flatnonzero(self.mate_x == UNMATCHED).astype(INDEX_DTYPE)

    def unmatched_y(self) -> np.ndarray:
        return np.flatnonzero(self.mate_y == UNMATCHED).astype(INDEX_DTYPE)

    def pairs(self) -> list[Tuple[int, int]]:
        """All matched edges as ``(x, y)`` pairs, sorted by x."""
        xs = np.flatnonzero(self.mate_x != UNMATCHED)
        return [(int(x), int(self.mate_x[x])) for x in xs]

    def is_consistent(self) -> bool:
        """mate_x and mate_y are mutual inverses and in range."""
        for x in range(self.n_x):
            y = self.mate_x[x]
            if y != UNMATCHED and (y < 0 or y >= self.n_y or self.mate_y[y] != x):
                return False
        for y in range(self.n_y):
            x = self.mate_y[y]
            if x != UNMATCHED and (x < 0 or x >= self.n_x or self.mate_x[x] != y):
                return False
        return True

    def copy(self) -> "Matching":
        return Matching(self.n_x, self.n_y, self.mate_x.copy(), self.mate_y.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return np.array_equal(self.mate_x, other.mate_x) and np.array_equal(
            self.mate_y, other.mate_y
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"Matching(n_x={self.n_x}, n_y={self.n_y}, |M|={self.cardinality})"


@dataclass
class MatchResult:
    """What every matching algorithm returns.

    ``matching`` is the final matching; ``counters`` the paper's Fig. 1
    metrics; ``trace`` (when the algorithm was asked to emit one) the
    parallel work trace for the cost model; ``breakdown`` wall-clock seconds
    per step; ``frontier_log`` per-level frontier sizes (Fig. 8).
    """

    matching: Matching
    algorithm: str
    counters: Counters = field(default_factory=Counters)
    trace: Optional[WorkTrace] = None
    breakdown: Dict[str, float] = field(default_factory=dict)
    frontier_log: Optional[FrontierLog] = None
    wall_seconds: float = 0.0

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality


def init_matching(graph: BipartiteCSR, initial: Matching | None) -> Matching:
    """Copy-or-create the working matching for an algorithm run.

    Algorithms never mutate the caller's matching in place.
    """
    if initial is None:
        return Matching.empty(graph)
    if initial.n_x != graph.n_x or initial.n_y != graph.n_y:
        raise MatchingError(
            f"initial matching sized ({initial.n_x}, {initial.n_y}) does not fit "
            f"graph ({graph.n_x}, {graph.n_y})"
        )
    return initial.copy()
