"""Single-source DFS maximum matching (Algorithm 1 with DFS searches).

Identical bookkeeping to :mod:`repro.matching.ss_bfs` (epoch-based visited
flags, failed trees stay hidden until the next augmentation) but the search
is an iterative depth-first traversal, which finds *some* augmenting path
rather than a shortest one — the paper's Fig. 1(c) shows the resulting much
longer augmenting paths.
"""

from __future__ import annotations

import time

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching


def ss_dfs(graph: BipartiteCSR, initial: Matching | None = None) -> MatchResult:
    """Maximum matching by single-source DFS augmenting-path searches."""
    start = time.perf_counter()
    matching = init_matching(graph, initial)
    counters = Counters()
    x_ptr, x_adj, _, _ = adjacency_lists(graph)
    mate_x = matching.mate_x.tolist()
    mate_y = matching.mate_y.tolist()
    visited = [0] * graph.n_y
    parent = [0] * graph.n_y
    epoch = 1
    edges = 0

    roots = [x for x in range(graph.n_x) if mate_x[x] == -1]
    for x0 in roots:
        counters.phases += 1
        # Iterative DFS; stack holds (x, next unscanned adjacency slot).
        stack = [(x0, x_ptr[x0])]
        end_y = -1
        while stack and end_y == -1:
            x, i = stack[-1]
            if i == x_ptr[x + 1]:
                stack.pop()
                continue
            stack[-1] = (x, i + 1)
            edges += 1
            y = x_adj[i]
            if visited[y] == epoch:
                continue
            visited[y] = epoch
            parent[y] = x
            mate = mate_y[y]
            if mate == -1:
                end_y = y
            else:
                stack.append((mate, x_ptr[mate]))
        if end_y == -1:
            continue  # dead tree stays hidden under this epoch
        length = 0
        y = end_y
        while True:
            x = parent[y]
            prev_mate = mate_x[x]
            mate_x[x] = y
            mate_y[y] = x
            length += 1
            if prev_mate == -1:
                break
            y = prev_mate
            length += 1
        counters.record_path(length)
        epoch += 1

    matching.mate_x[:] = mate_x
    matching.mate_y[:] = mate_y
    counters.edges_traversed = edges
    return MatchResult(
        matching=matching,
        algorithm="ss-dfs",
        counters=counters,
        wall_seconds=time.perf_counter() - start,
    )
