"""Matching verification: validity, maximality, and maximum certificates.

``is_maximum_matching`` certifies optimality without trusting any matching
algorithm: by Berge's theorem a matching is maximum iff no augmenting path
exists, which one multi-source BFS over the final matching decides. From the
same search we extract a König vertex cover whose size equals the matching
cardinality — an independent, self-checking certificate
(:func:`koenig_vertex_cover`).
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.errors import VerificationError
from repro.graph.csr import BipartiteCSR
from repro.matching.base import UNMATCHED, Matching


def is_valid_matching(graph: BipartiteCSR, matching: Matching) -> bool:
    """Mate arrays are mutually consistent and every pair is a graph edge."""
    if matching.n_x != graph.n_x or matching.n_y != graph.n_y:
        return False
    if not matching.is_consistent():
        return False
    return all(graph.has_edge(x, y) for x, y in matching.pairs())


def assert_valid_matching(graph: BipartiteCSR, matching: Matching) -> None:
    """Raise :class:`VerificationError` unless the matching is valid."""
    if not is_valid_matching(graph, matching):
        raise VerificationError("matching is structurally invalid for this graph")


def _alternating_reachability(
    graph: BipartiteCSR, matching: Matching
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """BFS over alternating paths from all unmatched X vertices.

    Returns ``(reach_x, reach_y, found_augmenting)`` where the reach arrays
    flag vertices reachable by an alternating path that starts with an
    unmatched X vertex (and hence starts with an unmatched edge).
    """
    reach_x = np.zeros(graph.n_x, dtype=bool)
    reach_y = np.zeros(graph.n_y, dtype=bool)
    queue: deque[int] = deque()
    for x in matching.unmatched_x():
        reach_x[x] = True
        queue.append(int(x))
    found = False
    while queue:
        x = queue.popleft()
        for y in graph.neighbors_x(x):
            y = int(y)
            if reach_y[y]:
                continue
            reach_y[y] = True
            mate = int(matching.mate_y[y])
            if mate == UNMATCHED:
                found = True  # augmenting path exists; keep going for cover
            elif not reach_x[mate]:
                reach_x[mate] = True
                queue.append(mate)
    return reach_x, reach_y, found


def is_maximal_matching(graph: BipartiteCSR, matching: Matching) -> bool:
    """No graph edge has both endpoints free."""
    free_y = matching.mate_y == UNMATCHED
    for x in matching.unmatched_x():
        nbrs = graph.neighbors_x(int(x))
        if nbrs.size and bool(free_y[nbrs].any()):
            return False
    return True


def is_maximum_matching(graph: BipartiteCSR, matching: Matching) -> bool:
    """Valid and admits no augmenting path (Berge's theorem)."""
    if not is_valid_matching(graph, matching):
        return False
    _, _, found_augmenting = _alternating_reachability(graph, matching)
    return not found_augmenting


def koenig_vertex_cover(
    graph: BipartiteCSR, matching: Matching
) -> Tuple[np.ndarray, np.ndarray]:
    """König cover: ``(cover_x, cover_y)`` index arrays.

    For a *maximum* matching, the König construction — matched X vertices
    not reachable by alternating paths from free X vertices, plus reachable
    Y vertices — is a vertex cover of size exactly ``|M|``. Raises
    :class:`VerificationError` if the input matching is not maximum (the
    construction then fails to cover, which we detect).
    """
    reach_x, reach_y, found = _alternating_reachability(graph, matching)
    if found:
        raise VerificationError("König cover requested for a non-maximum matching")
    matched_x = matching.mate_x != UNMATCHED
    cover_x = np.flatnonzero(matched_x & ~reach_x)
    cover_y = np.flatnonzero(reach_y)
    cover_size = cover_x.size + cover_y.size
    if cover_size != matching.cardinality:
        raise VerificationError(
            f"König cover size {cover_size} != matching cardinality {matching.cardinality}"
        )
    # Self-check: every edge must be covered.
    in_cover_x = np.zeros(graph.n_x, dtype=bool)
    in_cover_x[cover_x] = True
    in_cover_y = np.zeros(graph.n_y, dtype=bool)
    in_cover_y[cover_y] = True
    xs, ys = graph.edge_arrays()
    if not bool(np.all(in_cover_x[xs] | in_cover_y[ys])):
        raise VerificationError("König construction failed to cover all edges")
    return cover_x, cover_y


def hall_violator(graph: BipartiteCSR, matching: Matching) -> np.ndarray:
    """A deficiency witness: a set ``S`` of X vertices with
    ``|S| - |N(S)| = n_x - |M|``.

    By the defect form of Hall's theorem, the maximum matching misses
    exactly ``max_S (|S| - |N(S)|)`` X vertices; the set of X vertices
    reachable by alternating paths from free X vertices attains the
    maximum. Returns the (possibly empty) witness set as an index array and
    self-checks the defect identity; raises
    :class:`~repro.errors.VerificationError` for non-maximum input.
    """
    reach_x, reach_y, found = _alternating_reachability(graph, matching)
    if found:
        raise VerificationError("Hall violator requested for a non-maximum matching")
    s = np.flatnonzero(reach_x)
    # N(S) == reachable Y: every neighbour of a reachable x is reachable.
    neighborhood: set[int] = set()
    for x in s:
        neighborhood.update(int(y) for y in graph.neighbors_x(int(x)))
    if neighborhood != set(np.flatnonzero(reach_y).tolist()):
        raise VerificationError("alternating reachability produced an inconsistent N(S)")
    deficiency = int(s.size) - len(neighborhood)
    expected = graph.n_x - matching.cardinality
    if deficiency != expected:
        raise VerificationError(
            f"Hall defect {deficiency} != n_x - |M| = {expected}"
        )
    return s


def verify_maximum(graph: BipartiteCSR, matching: Matching) -> int:
    """Full certificate check; returns the certified maximum cardinality.

    Validates the matching, confirms no augmenting path exists, and
    cross-checks with a König cover of equal size. Raises
    :class:`VerificationError` on any failure.
    """
    assert_valid_matching(graph, matching)
    if not is_maximum_matching(graph, matching):
        raise VerificationError("matching admits an augmenting path (not maximum)")
    koenig_vertex_cover(graph, matching)
    hall_violator(graph, matching)
    return matching.cardinality
