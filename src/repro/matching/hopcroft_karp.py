"""Hopcroft-Karp maximum matching.

Phases of (1) a global BFS from all unmatched X vertices that levels the
graph up to the first layer containing unmatched Y vertices, then (2) DFS
restricted to the level graph extracting a *maximal* set of vertex-disjoint
*shortest* augmenting paths. O(sqrt(n) * m) phases bound. The paper uses HK
as one of the five Fig. 1 baselines and notes that, despite the better
asymptotic bound, HK needs more phases than MS-BFS because it only augments
along shortest paths.

The DFS is iterative (road-class graphs produce augmenting paths far deeper
than CPython's recursion limit).
"""

from __future__ import annotations

import time

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching


def hopcroft_karp(graph: BipartiteCSR, initial: Matching | None = None) -> MatchResult:
    """Maximum matching with the Hopcroft-Karp algorithm."""
    start = time.perf_counter()
    matching = init_matching(graph, initial)
    counters = Counters()
    x_ptr, x_adj, _, _ = adjacency_lists(graph)
    n_x = graph.n_x
    mate_x = matching.mate_x.tolist()
    mate_y = matching.mate_y.tolist()
    dist = [0] * n_x
    edges = 0

    def bfs() -> bool:
        """Level the X vertices; True iff some shortest augmenting path exists."""
        nonlocal edges
        frontier = []
        for x in range(n_x):
            if mate_x[x] == -1:
                dist[x] = 0
                frontier.append(x)
            else:
                dist[x] = -1
        found = False
        level = 0
        while frontier and not found:
            counters.bfs_levels += 1
            next_frontier = []
            for x in frontier:
                for i in range(x_ptr[x], x_ptr[x + 1]):
                    edges += 1
                    y = x_adj[i]
                    mate = mate_y[y]
                    if mate == -1:
                        found = True
                    elif dist[mate] == -1:
                        dist[mate] = level + 1
                        next_frontier.append(mate)
            frontier = next_frontier
            level += 1
        return found

    def dfs(x0: int) -> int:
        """Extract one shortest augmenting path from x0 in the level graph.

        Returns the path length in edges (0 on failure). Iterative: each
        stack frame is ``[x, next_slot, chosen_y]`` where chosen_y is the Y
        vertex used to descend from x.
        """
        nonlocal edges
        stack = [[x0, x_ptr[x0], -1]]
        while stack:
            frame = stack[-1]
            x, i = frame[0], frame[1]
            if i == x_ptr[x + 1]:
                stack.pop()
                dist[x] = -1  # dead end: prune from this phase's level graph
                continue
            frame[1] = i + 1
            edges += 1
            y = x_adj[i]
            mate = mate_y[y]
            if mate == -1:
                # Free Y endpoint: flip the whole chain recorded on the stack.
                frame[2] = y
                for fx, _, fy in stack:
                    mate_x[fx] = fy
                    mate_y[fy] = fx
                return 2 * len(stack) - 1
            if dist[mate] == dist[x] + 1:
                frame[2] = y
                stack.append([mate, x_ptr[mate], -1])
        return 0

    while bfs():
        counters.phases += 1
        for x in range(n_x):
            if mate_x[x] == -1:
                length = dfs(x)
                if length:
                    counters.record_path(length)
    counters.phases += 1  # the final (empty) phase that proves optimality

    matching.mate_x[:] = mate_x
    matching.mate_y[:] = mate_y
    counters.edges_traversed = edges
    return MatchResult(
        matching=matching,
        algorithm="hopcroft-karp",
        counters=counters,
        wall_seconds=time.perf_counter() - start,
    )
