"""Push-relabel maximum bipartite matching (the paper's PR competitor).

FIFO push-relabel specialised to unit-capacity bipartite graphs with the
*double push* operation and periodic *global relabelling*, following the
algorithm of Kaya, Langguth, Manne and Uçar that Langguth et al.'s parallel
implementation (the paper's PR baseline) builds on:

* labels ``d`` approximate residual distance to the sink (X even, Y odd);
* an active (free) X vertex relabels itself to ``min_neighbour_label + 1``
  and pushes to the minimum-label neighbour ``y``: if ``y`` is free they
  match; otherwise x *steals* ``y``, the old mate re-enters the active
  queue, and ``d[y]`` increases by 2;
* a free X vertex whose neighbours all have labels >= n can never reach the
  sink and is discarded;
* global relabelling recomputes exact labels with a backward BFS from the
  free Y vertices every ``m / relabel_frequency`` edge scans.

The paper tunes the PR baseline with a queue limit of 500 and relabel
frequency 2 (serial) / 16 (40 threads) — the same knobs exposed here. The
work trace reflects Langguth et al.'s parallelisation: rounds of up to
``queue_limit`` active vertices processed concurrently between barriers,
plus level-synchronous relabel sweeps.
"""

from __future__ import annotations

import time
from collections import deque

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching
from repro.parallel.trace import WorkTrace


def push_relabel(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    queue_limit: int = 500,
    relabel_frequency: float = 2.0,
    emit_trace: bool = True,
) -> MatchResult:
    """Maximum matching with FIFO push-relabel + global relabelling."""
    start = time.perf_counter()
    matching = init_matching(graph, initial)
    counters = Counters()
    x_ptr, x_adj, y_ptr, y_adj = adjacency_lists(graph)
    n_x, n_y = graph.n_x, graph.n_y
    mate_x = matching.mate_x.tolist()
    mate_y = matching.mate_y.tolist()
    # "Infinite" label: strictly greater than any finite residual distance
    # (a residual path to the sink visits at most n = n_x + n_y vertices,
    # so finite distances can reach exactly n).
    lmax = n_x + n_y + 1
    d_x = [0] * n_x
    d_y = [1] * n_y
    trace = WorkTrace() if emit_trace else None
    edges = 0
    relabel_budget = max(1, int(graph.num_directed_edges / max(relabel_frequency, 1e-9)))
    edges_since_relabel = 0

    def global_relabel() -> None:
        """Exact labels via backward BFS from free Y vertices."""
        nonlocal edges, edges_since_relabel
        for y in range(n_y):
            d_y[y] = lmax
        for x in range(n_x):
            d_x[x] = lmax
        if trace is not None:
            # The label-reset sweep is real (parallel memset-like) work.
            trace.add_uniform("relabel", n_x + n_y, 0.25)
        frontier = [y for y in range(n_y) if mate_y[y] == -1]
        for y in frontier:
            d_y[y] = 1
        label = 1
        relabel_costs: list[int] = []
        while frontier:
            if trace is not None:
                # Per-vertex costs of this sweep; the whole sweep is emitted
                # as one region below (Langguth et al. run global relabelling
                # as a single parallel phase).
                relabel_costs.extend(
                    (y_ptr[v + 1] - y_ptr[v]) + 1 if label % 2 == 1 else 2
                    for v in frontier
                )
            next_frontier = []
            if label % 2 == 1:
                # Y level -> X via unmatched edges (residual x->y reversed).
                for y in frontier:
                    for i in range(y_ptr[y], y_ptr[y + 1]):
                        edges += 1
                        x = y_adj[i]
                        if d_x[x] == lmax and mate_x[x] != y:
                            d_x[x] = label + 1
                            next_frontier.append(x)
            else:
                # X level -> its matched Y (residual y->x reversed).
                for x in frontier:
                    edges += 1
                    y = mate_x[x]
                    if y != -1 and d_y[y] == lmax:
                        d_y[y] = label + 1
                        next_frontier.append(y)
            frontier = next_frontier
            label += 1
        if trace is not None and relabel_costs:
            trace.add("relabel", relabel_costs)
        edges_since_relabel = 0
        counters.phases += 1  # count relabel sweeps as the PR "phases"

    global_relabel()
    queue: deque[int] = deque(
        x for x in range(n_x) if mate_x[x] == -1 and d_x[x] < lmax
    )

    while True:
        if not queue:
            # Certified termination: heuristic label updates (stale row
            # labels, steal increments) may over-raise labels and discard a
            # still-matchable vertex. Recompute exact labels; only stop when
            # every free X vertex provably cannot reach the sink.
            global_relabel()
            queue = deque(x for x in range(n_x) if mate_x[x] == -1 and d_x[x] < lmax)
            if not queue:
                break
        # One parallel round: up to queue_limit active vertices.
        round_size = min(queue_limit, len(queue))
        round_costs = []
        steals = 0
        for _ in range(round_size):
            x = queue.popleft()
            if mate_x[x] != -1:
                continue
            if d_x[x] >= lmax:
                continue
            # Find the minimum-label neighbour.
            best_y = -1
            best_d = lmax
            scan = 0
            for i in range(x_ptr[x], x_ptr[x + 1]):
                scan += 1
                y = x_adj[i]
                dy = d_y[y]
                if dy < best_d:
                    best_d = dy
                    best_y = y
                    if dy == d_x[x] - 1:
                        break  # already admissible; no smaller label exists
            edges += scan
            edges_since_relabel += scan
            round_costs.append(scan + 1)
            if best_y == -1 or best_d >= lmax:
                d_x[x] = lmax  # unmatchable; discard
                continue
            d_x[x] = best_d + 1  # relabel
            old_mate = mate_y[best_y]
            mate_x[x] = best_y
            mate_y[best_y] = x
            if old_mate != -1:
                # Double push: steal y, bump its label, reactivate old mate.
                mate_x[old_mate] = -1
                d_y[best_y] = best_d + 2
                queue.append(old_mate)
                steals += 1
        if trace is not None and round_costs:
            trace.add(
                "push", round_costs, atomics=round_size + steals,
                memory_pattern="irregular",
            )
        if edges_since_relabel >= relabel_budget:
            global_relabel()
            # Drop vertices proven unmatchable by the exact labels.
            queue = deque(x for x in queue if d_x[x] < lmax and mate_x[x] == -1)

    matching.mate_x[:] = mate_x
    matching.mate_y[:] = mate_y
    counters.edges_traversed = edges
    return MatchResult(
        matching=matching,
        algorithm="push-relabel",
        counters=counters,
        trace=trace,
        wall_seconds=time.perf_counter() - start,
    )
