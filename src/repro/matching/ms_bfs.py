"""Plain multi-source BFS matching (Algorithm 2) — MS-BFS-Graft's ancestor.

Delegates to the MS-BFS-Graft driver with grafting and direction
optimization disabled, which reduces Algorithm 3 to Algorithm 2 exactly:
every phase builds the alternating forest from scratch with top-down BFS,
augments, and resets the traversed vertices. Keeping one code path makes
the Fig. 7 "contributions" comparison apples-to-apples.
"""

from __future__ import annotations

from repro.graph.csr import BipartiteCSR
from repro.matching.base import MatchResult, Matching


def ms_bfs(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    engine: str = "auto",
    record_frontiers: bool = False,
    emit_trace: bool = True,
    deadline=None,
    phase_hook=None,
    telemetry=None,
    reorder: str = "none",
) -> MatchResult:
    """Maximum matching by multi-source BFS without tree grafting."""
    # Imported lazily: repro.core depends on repro.matching.base, and a
    # module-level import here would close an import cycle through the
    # repro.matching package __init__.
    from repro.core.driver import ms_bfs_graft

    return ms_bfs_graft(
        graph,
        initial,
        direction_optimizing=False,
        grafting=False,
        engine=engine,
        record_frontiers=record_frontiers,
        emit_trace=emit_trace,
        deadline=deadline,
        phase_hook=phase_hook,
        telemetry=telemetry,
        reorder=reorder,
    )
