"""Internal helpers shared by the pure-Python matching algorithm loops.

CPython indexes plain lists several times faster than it indexes numpy
arrays element-by-element, so the search-loop algorithms (Karp-Sipser, the
SS searches, Pothen-Fan, push-relabel) convert the CSR arrays to lists once
per graph. The vectorized kernels in :mod:`repro.core.kernels` keep using
the numpy arrays directly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.csr import BipartiteCSR


def adjacency_lists(graph: BipartiteCSR) -> Tuple[List[int], List[int], List[int], List[int]]:
    """``(x_ptr, x_adj, y_ptr, y_adj)`` as plain Python lists.

    Cached on the (immutable) graph instance — benchmark runs call several
    algorithms on the same graph.
    """
    if graph._adj_lists is None:
        graph._adj_lists = (
            graph.x_ptr.tolist(),
            graph.x_adj.tolist(),
            graph.y_ptr.tolist(),
            graph.y_adj.tolist(),
        )
    return graph._adj_lists
