"""Matching algorithms: state, initialisers, baselines, verification.

Maximal-matching initialisers (Section II-B: all maximum algorithms here are
initialised with Karp-Sipser, as in the paper):

* :func:`karp_sipser` — degree-1 rule + random edges;
* :func:`greedy_matching` — first-fit greedy;

Maximum-matching baselines (the five algorithms of Fig. 1 plus PR):

* :func:`ss_bfs` / :func:`ss_dfs` — single-source searches (Algorithm 1);
* :func:`ms_bfs` — multi-source BFS (Algorithm 2, no grafting);
* :func:`hopcroft_karp` — shortest-augmenting-path phases;
* :func:`pothen_fan` — multi-source DFS with lookahead and fairness;
* :func:`push_relabel` — FIFO push-relabel with global relabelling.

The paper's own algorithm, MS-BFS-Graft, lives in :mod:`repro.core`.
"""

from repro.matching.base import Matching, MatchResult
from repro.matching.verify import (
    assert_valid_matching,
    is_valid_matching,
    is_maximal_matching,
    is_maximum_matching,
    verify_maximum,
    koenig_vertex_cover,
    hall_violator,
)
from repro.matching.karp_sipser import karp_sipser
from repro.matching.karp_sipser_parallel import karp_sipser_parallel
from repro.matching.greedy import greedy_matching
from repro.matching.ss_bfs import ss_bfs
from repro.matching.ss_dfs import ss_dfs
from repro.matching.ms_bfs import ms_bfs
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.pothen_fan import pothen_fan
from repro.matching.push_relabel import push_relabel
from repro.matching.incremental import IncrementalMatcher

__all__ = [
    "Matching",
    "MatchResult",
    "assert_valid_matching",
    "is_valid_matching",
    "is_maximal_matching",
    "is_maximum_matching",
    "verify_maximum",
    "koenig_vertex_cover",
    "hall_violator",
    "karp_sipser",
    "karp_sipser_parallel",
    "greedy_matching",
    "ss_bfs",
    "ss_dfs",
    "ms_bfs",
    "hopcroft_karp",
    "pothen_fan",
    "push_relabel",
    "IncrementalMatcher",
]
