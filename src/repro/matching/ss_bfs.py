"""Single-source BFS maximum matching (Algorithm 1 with BFS searches).

Follows the paper's SS-MATCH structure exactly: search for an augmenting
path from one unmatched X vertex at a time; on success, augment and clear
all visited flags; on failure, *keep* the visited flags set, hiding the
failed tree from subsequent searches (safe, because a vertex unmatched after
a failed search can never be matched later — Section II-C). The flag
clearing is O(1) via an epoch counter.
"""

from __future__ import annotations

import time

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching


def ss_bfs(graph: BipartiteCSR, initial: Matching | None = None) -> MatchResult:
    """Maximum matching by single-source BFS augmenting-path searches."""
    start = time.perf_counter()
    matching = init_matching(graph, initial)
    counters = Counters()
    x_ptr, x_adj, _, _ = adjacency_lists(graph)
    mate_x = matching.mate_x.tolist()
    mate_y = matching.mate_y.tolist()
    n_y = graph.n_y
    # visited[y] == epoch means "visited since the last augmentation".
    visited = [0] * n_y
    parent = [0] * n_y  # parent[y]: X vertex that discovered y
    epoch = 1
    edges = 0

    roots = [x for x in range(graph.n_x) if mate_x[x] == -1]
    for x0 in roots:
        # One phase per search, as in SS-MATCH.
        counters.phases += 1
        frontier = [x0]
        end_y = -1
        while frontier and end_y == -1:
            next_frontier = []
            for x in frontier:
                for i in range(x_ptr[x], x_ptr[x + 1]):
                    edges += 1
                    y = x_adj[i]
                    if visited[y] == epoch:
                        continue
                    visited[y] = epoch
                    parent[y] = x
                    mate = mate_y[y]
                    if mate == -1:
                        end_y = y
                        break
                    next_frontier.append(mate)
                if end_y != -1:
                    break
            frontier = next_frontier
        if end_y == -1:
            # Failed search: keep the epoch's visited flags so this dead
            # tree is skipped by future searches.
            continue
        # Augment along parent/mate pointers and reset all visited flags.
        length = 0
        y = end_y
        while True:
            x = parent[y]
            prev_mate = mate_x[x]
            mate_x[x] = y
            mate_y[y] = x
            length += 1
            if prev_mate == -1:
                break
            y = prev_mate
            length += 1
        counters.record_path(length)
        epoch += 1

    matching.mate_x[:] = mate_x
    matching.mate_y[:] = mate_y
    counters.edges_traversed = edges
    return MatchResult(
        matching=matching,
        algorithm="ss-bfs",
        counters=counters,
        wall_seconds=time.perf_counter() - start,
    )
