"""Karp-Sipser maximal matching initialiser.

The paper initialises *every* maximum-matching algorithm with Karp-Sipser
(Section II-B), "because it is one of the best initializer algorithms for
cardinality matching". The algorithm repeatedly applies the degree-1 rule —
a vertex with exactly one remaining neighbour is matched to it, which is
never a mistake — and falls back to matching a uniformly random remaining
edge when no degree-1 vertex exists. Runs in O(m).
"""

from __future__ import annotations

import time

from repro.graph.csr import BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching._common import adjacency_lists
from repro.matching.base import MatchResult, Matching, init_matching
from repro.util.rng import SeedLike, as_rng


def karp_sipser(
    graph: BipartiteCSR,
    initial: Matching | None = None,
    *,
    seed: SeedLike = 0,
) -> MatchResult:
    """Compute a maximal matching with the Karp-Sipser heuristic.

    ``initial`` (rarely used) seeds the matching; its matched vertices are
    simply excluded from the residual graph. ``seed`` drives the random-edge
    fallback and the processing order.
    """
    start = time.perf_counter()
    rng = as_rng(seed)
    matching = init_matching(graph, initial)
    counters = Counters()
    n_x, n_y = graph.n_x, graph.n_y
    x_ptr, x_adj, y_ptr, y_adj = adjacency_lists(graph)
    mate_x = matching.mate_x
    mate_y = matching.mate_y
    edges = 0

    # Residual degrees: number of *unmatched* neighbours of each vertex.
    free_x = [mate_x[x] == -1 for x in range(n_x)]
    free_y = [mate_y[y] == -1 for y in range(n_y)]
    deg_x = [0] * n_x
    deg_y = [0] * n_y
    for x in range(n_x):
        if free_x[x]:
            d = 0
            for i in range(x_ptr[x], x_ptr[x + 1]):
                if free_y[x_adj[i]]:
                    d += 1
            deg_x[x] = d
            edges += x_ptr[x + 1] - x_ptr[x]
    for y in range(n_y):
        if free_y[y]:
            d = 0
            for i in range(y_ptr[y], y_ptr[y + 1]):
                if free_x[y_adj[i]]:
                    d += 1
            deg_y[y] = d
            edges += y_ptr[y + 1] - y_ptr[y]

    # Degree-1 work stack: entries (side, vertex); side 0 = X, 1 = Y.
    stack = [(0, x) for x in range(n_x) if free_x[x] and deg_x[x] == 1]
    stack += [(1, y) for y in range(n_y) if free_y[y] and deg_y[y] == 1]

    def match_pair(x: int, y: int) -> None:
        nonlocal edges
        mate_x[x] = y
        mate_y[y] = x
        free_x[x] = False
        free_y[y] = False
        # Removing x and y decrements their free neighbours' degrees.
        for i in range(x_ptr[x], x_ptr[x + 1]):
            yy = x_adj[i]
            edges += 1
            if free_y[yy]:
                deg_y[yy] -= 1
                if deg_y[yy] == 1:
                    stack.append((1, yy))
        for i in range(y_ptr[y], y_ptr[y + 1]):
            xx = y_adj[i]
            edges += 1
            if free_x[xx]:
                deg_x[xx] -= 1
                if deg_x[xx] == 1:
                    stack.append((0, xx))

    def drain_degree_one() -> None:
        nonlocal edges
        while stack:
            side, v = stack.pop()
            if side == 0:
                if not free_x[v] or deg_x[v] != 1:
                    continue
                partner = -1
                for i in range(x_ptr[v], x_ptr[v + 1]):
                    edges += 1
                    if free_y[x_adj[i]]:
                        partner = x_adj[i]
                        break
                if partner >= 0:
                    match_pair(v, partner)
            else:
                if not free_y[v] or deg_y[v] != 1:
                    continue
                partner = -1
                for i in range(y_ptr[v], y_ptr[v + 1]):
                    edges += 1
                    if free_x[y_adj[i]]:
                        partner = y_adj[i]
                        break
                if partner >= 0:
                    match_pair(partner, v)

    drain_degree_one()

    # Random-edge phase: walk a shuffled edge order, matching any edge whose
    # endpoints are both still free, re-draining degree-1 vertices after
    # each match.
    order = rng.permutation(graph.nnz)
    # Precompute the source X vertex of each CSR edge slot.
    edge_x = [0] * graph.nnz
    for x in range(n_x):
        for i in range(x_ptr[x], x_ptr[x + 1]):
            edge_x[i] = x
    for e in order:
        e = int(e)
        x = edge_x[e]
        y = x_adj[e]
        edges += 1
        if free_x[x] and free_y[y]:
            match_pair(x, y)
            drain_degree_one()

    counters.edges_traversed = edges
    counters.phases = 1
    return MatchResult(
        matching=matching,
        algorithm="karp-sipser",
        counters=counters,
        wall_seconds=time.perf_counter() - start,
    )
