"""Per-phase dynamics extracted from work traces.

The paper's narrative lives at phase granularity: how much traversal each
phase costs, how many augmenting paths it finds, and how grafting changes
that trajectory (most visible in its Figs. 1(b) and 8). A
:class:`PhaseProfile` slices an MS-BFS-Graft work trace back into phases —
the trace's ``augment`` regions are the phase boundaries — so experiments
can plot per-phase quantities without re-instrumenting the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.parallel.trace import WorkTrace

TRAVERSAL_KINDS = ("topdown", "bottomup")


@dataclass
class PhaseRecord:
    """One phase of an MS-BFS(-Graft) run."""

    index: int
    traversal_work: float = 0.0
    traversal_levels: int = 0
    augmentations: int = 0
    augment_work: float = 0.0
    graft_work: float = 0.0
    used_graft_branch: bool = False


@dataclass
class PhaseProfile:
    """Phases reconstructed from a work trace."""

    phases: List[PhaseRecord] = field(default_factory=list)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    def traversal_work_series(self) -> List[float]:
        return [p.traversal_work for p in self.phases]

    def augmentation_series(self) -> List[int]:
        return [p.augmentations for p in self.phases]

    def total_traversal_work(self) -> float:
        return sum(p.traversal_work for p in self.phases)


def phase_profile(trace: WorkTrace) -> PhaseProfile:
    """Slice an MS-BFS-Graft trace into per-phase records.

    Phases are delimited by the end of each phase's step-3 region
    (``grafting``); the final phase (which finds nothing and only
    traverses) closes at the trace end.
    """
    profile = PhaseProfile()
    current = PhaseRecord(index=0)
    for region in trace.regions:
        if region.kind in TRAVERSAL_KINDS:
            current.traversal_work += region.total_work
            current.traversal_levels += 1
        elif region.kind == "augment":
            current.augmentations += region.num_items
            current.augment_work += region.total_work
        elif region.kind == "grafting":
            current.graft_work += region.total_work
            # An itemised grafting region is the bottom-up graft sweep; the
            # destroy-and-rebuild branch emits a uniform region.
            current.used_graft_branch = not region.is_uniform
            profile.phases.append(current)
            current = PhaseRecord(index=current.index + 1)
        # 'statistics' and other kinds don't delimit phases.
    if (
        current.traversal_work
        or current.augmentations
        or current.graft_work
        or not profile.phases
    ):
        profile.phases.append(current)
    return profile
