"""Human-readable run reports.

Collects everything a :class:`~repro.matching.base.MatchResult` knows —
cardinality, the paper's Fig. 1 counters, the wall-clock step breakdown,
and (when a work trace exists) simulated parallel times on a machine — into
one formatted block. Used by ``repro-match run --report`` and handy in
notebooks. :func:`batch_report` renders the batch service's per-job
summary table the same way.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bench.report import format_table
from repro.matching.base import MatchResult
from repro.parallel.cost_model import CostModel
from repro.parallel.machine import MIRASOL, MachineSpec


def run_report(
    result: MatchResult,
    *,
    machine: Optional[MachineSpec] = MIRASOL,
    threads: int = 40,
) -> str:
    """Multi-line report for one algorithm run."""
    c = result.counters
    lines = [
        f"algorithm        : {result.algorithm}",
        f"|M|              : {result.cardinality:,}"
        f"  ({result.matching.matching_fraction():.4f} of |V|)",
        f"edges traversed  : {c.edges_traversed:,}",
        f"phases           : {c.phases}   (BFS levels: {c.bfs_levels};"
        f" top-down {c.topdown_steps}, bottom-up {c.bottomup_steps})",
        f"augmentations    : {c.augmentations}"
        f"  (avg path {c.avg_augmenting_path_length:.2f} edges,"
        f" max {c.max_augmenting_path_length})",
        f"grafted vertices : {c.grafts}   (tree rebuilds: {c.tree_rebuilds})",
        f"wall time        : {result.wall_seconds * 1e3:.2f} ms",
    ]
    if result.breakdown:
        total = sum(result.breakdown.values()) or 1.0
        parts = ", ".join(
            f"{name} {seconds / total:.0%}"
            for name, seconds in sorted(
                result.breakdown.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"step breakdown   : {parts}")
    if result.trace is not None and machine is not None:
        model = CostModel(machine)
        serial = model.simulate(result.trace, 1)
        parallel = model.simulate(result.trace, threads)
        lines.append(
            f"simulated {machine.name:8s}: {serial.seconds * 1e3:.3f} ms serial, "
            f"{parallel.seconds * 1e3:.3f} ms @ {threads} threads "
            f"({serial.seconds / max(parallel.seconds, 1e-12):.1f}x)"
        )
        fractions = parallel.breakdown_fractions()
        if fractions:
            parts = ", ".join(
                f"{k} {v:.0%}" for k, v in sorted(fractions.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"simulated shares : {parts}")
    return "\n".join(lines)


def batch_report(
    outcomes: Sequence[object],
    event_counts: Optional[Dict[str, int]] = None,
) -> str:
    """Summary table of a batch service run (``repro-match batch``).

    ``outcomes`` are :class:`~repro.service.jobs.JobOutcome` records; the
    optional ``event_counts`` histogram (from
    :func:`repro.service.events.summarize_events`) is appended so the
    table and the event log tell one story.
    """
    rows = []
    for o in outcomes:
        rows.append([
            o.spec.job_id,
            o.status,
            o.spec.algorithm,
            o.engine_used if o.engine_used is not None else "native",
            o.attempts,
            "yes" if o.degraded else "",
            o.cardinality if o.cardinality is not None else "-",
            (o.error or "")[:48],
        ])
    lines = [format_table(
        ["job", "status", "algorithm", "engine", "attempts", "degraded", "|M|", "error"],
        rows,
        title="batch summary",
    )]
    succeeded = sum(1 for o in outcomes if o.status in ("done", "resumed"))
    resumed = sum(1 for o in outcomes if o.status == "resumed")
    lines.append(
        f"{succeeded}/{len(outcomes)} jobs succeeded "
        f"({resumed} resumed from checkpoint, "
        f"{sum(1 for o in outcomes if o.status == 'timeout')} timed out, "
        f"{sum(1 for o in outcomes if o.status == 'failed')} failed)"
    )
    if event_counts:
        parts = ", ".join(f"{name} x{n}" for name, n in sorted(event_counts.items()))
        lines.append(f"events: {parts}")
    return "\n".join(lines)
