"""Algorithm-independent search counters.

The paper compares matching algorithms on three properties (Section II-D,
Fig. 1): (a) number of traversed edges, (b) number of phases, and (c) average
augmenting path length. Every matching algorithm in this package fills in a
:class:`Counters` instance with exactly those quantities.

An edge is *traversed* each time an adjacency entry is examined, matching the
paper's MTEPS definition ("the number of edges traversed", not ``m``).
Augmenting path length is counted in edges (always odd).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class Counters:
    """Mutable counter set shared by all matching algorithms."""

    edges_traversed: int = 0
    phases: int = 0
    augmentations: int = 0
    total_augmenting_path_length: int = 0
    path_lengths: list[int] = field(default_factory=list)
    bfs_levels: int = 0
    grafts: int = 0
    """Number of Y vertices re-attached by the tree-grafting step."""
    tree_rebuilds: int = 0
    """Number of phases that fell back to rebuilding active trees from scratch."""
    topdown_steps: int = 0
    bottomup_steps: int = 0

    def record_path(self, length_edges: int) -> None:
        """Record one augmentation along a path of ``length_edges`` edges."""
        if length_edges < 1 or length_edges % 2 == 0:
            raise ValueError(f"augmenting path length must be odd and >= 1, got {length_edges}")
        self.augmentations += 1
        self.total_augmenting_path_length += length_edges
        self.path_lengths.append(length_edges)

    def record_paths(self, lengths: Sequence[int] | np.ndarray) -> None:
        """Record a batch of augmentations (one call per phase, not per path)."""
        arr = np.asarray(lengths, dtype=np.int64)
        invalid = (arr < 1) | (arr % 2 == 0)
        if invalid.any():
            bad = arr[invalid][:5].tolist()
            raise ValueError(f"augmenting path lengths must be odd and >= 1, got {bad}")
        self.augmentations += int(arr.size)
        self.total_augmenting_path_length += int(arr.sum())
        self.path_lengths.extend(arr.tolist())

    @property
    def avg_augmenting_path_length(self) -> float:
        """Mean augmenting path length in edges (0.0 if no augmentations)."""
        if self.augmentations == 0:
            return 0.0
        return self.total_augmenting_path_length / self.augmentations

    @property
    def max_augmenting_path_length(self) -> int:
        return max(self.path_lengths, default=0)

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate ``other`` into ``self`` (used when chaining init + max)."""
        self.edges_traversed += other.edges_traversed
        self.phases += other.phases
        self.augmentations += other.augmentations
        self.total_augmenting_path_length += other.total_augmenting_path_length
        self.path_lengths.extend(other.path_lengths)
        self.bfs_levels += other.bfs_levels
        self.grafts += other.grafts
        self.tree_rebuilds += other.tree_rebuilds
        self.topdown_steps += other.topdown_steps
        self.bottomup_steps += other.bottomup_steps
        return self
