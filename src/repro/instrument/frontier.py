"""Frontier-size logging for the Fig. 8 experiment.

Fig. 8 plots the BFS frontier size per level for two consecutive phases of
MS-BFS and MS-BFS-Graft on copapersDBLP: grafting front-loads a *large*
frontier that shrinks monotonically, whereas without grafting each phase
starts from the small set of unmatched vertices, grows, and then shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class FrontierLog:
    """Per-phase, per-level frontier sizes (measured in X vertices)."""

    phases: List[List[int]] = field(default_factory=list)

    def start_phase(self) -> None:
        self.phases.append([])

    def record(self, frontier_size: int) -> None:
        if not self.phases:
            self.start_phase()
        self.phases[-1].append(int(frontier_size))

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    def levels(self, phase: int) -> List[int]:
        """Frontier sizes for one phase, level by level."""
        return list(self.phases[phase])

    def total_vertices(self, phase: int) -> int:
        """Area under the curve: total frontier vertices processed in a phase."""
        return sum(self.phases[phase])

    def height(self, phase: int) -> int:
        """Number of BFS levels in a phase (forest height / sync points)."""
        return len(self.phases[phase])
