"""Instrumentation: counters, runtime breakdowns, frontier logs, rates.

Everything the paper's evaluation section measures lives here:

* :class:`Counters` — traversed edges, phases, augmenting-path lengths
  (Fig. 1a-c);
* :class:`repro.util.timer.StepTimer` integration for the per-step runtime
  breakdown (Fig. 6);
* :class:`FrontierLog` — frontier size per BFS level per phase (Fig. 8);
* :func:`mteps` — millions of traversed edges per second (Fig. 4);
* :func:`parallel_sensitivity` — psi = 100 * sigma / mu (Section V-B).
"""

from repro.instrument.counters import Counters
from repro.instrument.frontier import FrontierLog
from repro.instrument.phases import PhaseProfile, PhaseRecord, phase_profile
from repro.instrument.rates import mteps, parallel_sensitivity

__all__ = [
    "Counters",
    "FrontierLog",
    "mteps",
    "parallel_sensitivity",
    "PhaseProfile",
    "PhaseRecord",
    "phase_profile",
]
