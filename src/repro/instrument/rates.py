"""Derived rate metrics: MTEPS and parallel sensitivity."""

from __future__ import annotations

from typing import Sequence

from repro.util.stats import coefficient_of_variation


def mteps(edges_traversed: int, seconds: float) -> float:
    """Search rate in millions of traversed edges per second (Fig. 4).

    Uses the *actual* number of traversed edges, as the paper does for
    matching algorithms (Section V-C), not the total edge count of the graph.

    ``seconds <= 0`` returns ``float("inf")``: sub-resolution timings happen
    on tiny instances (a clock tick can round an elapsed time to zero), and
    an infinite rate sorts and plots correctly where an exception would
    abort a whole report.
    """
    if seconds <= 0:
        return float("inf")
    return edges_traversed / seconds / 1e6


def parallel_sensitivity(runtimes: Sequence[float]) -> float:
    """The paper's psi measure: ``100 * stddev / mean`` over repeated runs.

    Section V-B reports psi of 6% for MS-BFS-Graft, 10% for PR and 17% for
    PF on 40 threads of Mirasol.
    """
    return coefficient_of_variation(runtimes)
