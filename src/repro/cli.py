"""Command-line interface.

Usage examples::

    repro-match run --graph rmat --scale 0.3 --algorithm ms-bfs-graft
    repro-match suite --scale 0.2
    repro-match experiment fig3 --scale 0.2
    repro-match experiment all --scale 0.2
    repro-match match path/to/matrix.mtx --algorithm hopcroft-karp
    repro-match lint
    repro-match racecheck --seeds 5
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict

from repro.bench import experiments
from repro.bench.runner import ALGORITHMS, run_algorithm
from repro.bench.suite import get_suite_graph, suite_counterpart, suite_specs
from repro.graph.io import read_matrix_market
from repro.graph.reorder import REORDER_CHOICES
from repro.matching.verify import verify_maximum


def _open_cache(args: argparse.Namespace, telemetry=None):
    """A :class:`~repro.cache.GraphCache` when ``--cache-dir`` was given."""
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        return None
    from repro.cache import GraphCache

    return GraphCache(cache_dir, telemetry=telemetry)


def _acquire_suite_graph(args: argparse.Namespace, telemetry=None):
    """Resolve the suite graph for run/trace, through the cache when asked.

    Returns ``(graph, initial_matching_or_None, status_line_or_None,
    cache_or_None, prepared_or_None)``: with a cache the Karp-Sipser warm
    start comes from the entry too (keyed by seed), so a warm invocation
    skips the whole ingest path, and the ``(cache, prepared)`` pair lets
    the caller derive cached reordered layouts from the same entry.
    """
    cache = _open_cache(args, telemetry=telemetry)
    if cache is None:
        graph = get_suite_graph(args.graph, scale=args.scale).graph
        return graph, None, None, None, None
    prepared = cache.prepare_suite(args.graph, args.scale)
    initial = cache.warm_start(prepared, args.seed)
    status = (
        f"cache        : {'hit' if prepared.from_cache else 'miss'} "
        f"{prepared.key[:12]} ({cache.total_bytes:,} bytes in store)"
    )
    return prepared.graph, initial, status, cache, prepared


def _resolve_reorder(args, graph, cache=None, prepared=None, telemetry=None):
    """Resolve ``--reorder`` for one run, through the layout cache if any.

    Returns ``(reorder, plan, layout, status_line_or_None)`` ready to pass
    to :func:`run_algorithm`. ``auto`` is resolved here (against the joint
    dispatch decision) so the layout cache is keyed by the concrete
    strategy; with a cache the permuted CSR comes back memory-mapped and a
    warm hit skips the ordering computation entirely.
    """
    reorder = getattr(args, "reorder", "none") or "none"
    if reorder == "none":
        return "none", None, None, None
    strategy = reorder
    if strategy == "auto":
        from repro.core.driver import choose_engine

        decision = choose_engine(graph, reorder="auto",
                                 workers=getattr(args, "workers", None) or 1)
        strategy = decision.reorder
        if strategy == "none":
            return "none", None, None, (
                f"reorder      : auto -> none ({decision.reorder_reason})"
            )
    if cache is not None and prepared is not None:
        layout = cache.prepare_layout(prepared, strategy, telemetry=telemetry)
        state = "layout hit" if layout.from_cache else "layout built"
        return strategy, layout.reorder_plan, layout.graph, (
            f"reorder      : {strategy} ({state} {layout.key[:12]})"
        )
    return strategy, None, None, f"reorder      : {strategy} (planned inline)"

_EXPERIMENTS: Dict[str, Callable[[float], object]] = {
    "table1": lambda scale: experiments.table1.run(),
    "table2": lambda scale: experiments.table2.run(scale=scale),
    "fig1": lambda scale: experiments.fig1.run(scale=scale),
    "fig3": lambda scale: experiments.fig3.run(scale=scale),
    "fig4": lambda scale: experiments.fig4.run(scale=scale),
    "fig5": lambda scale: experiments.fig5.run(scale=scale),
    "fig6": lambda scale: experiments.fig6.run(scale=scale),
    "fig7": lambda scale: experiments.fig7.run(scale=scale),
    "fig8": lambda scale: experiments.fig8.run(scale=scale),
    "sensitivity": lambda scale: experiments.sensitivity.run(scale=scale, runs=5),
    "ablation-alpha": lambda scale: experiments.ablation.alpha_sweep(scale=scale),
    "ablation-init": lambda scale: experiments.ablation.initializer_comparison(scale=scale),
    "ablation-queue": lambda scale: experiments.ablation.queue_capacity_sweep(scale=scale),
    "ablation-direction": lambda scale: experiments.ablation.direction_strategy_comparison(scale=scale),
    "serial-walltime": lambda scale: experiments.serial_walltime.run(scale=scale),
    "phase-dynamics": lambda scale: experiments.phase_dynamics.run(scale=scale),
}


def _machine_registry():
    from repro.parallel import machine as m

    return {"mirasol": m.MIRASOL, "edison": m.EDISON,
            "laptop": m.LAPTOP, "manycore": m.MANYCORE}


def _cmd_run(args: argparse.Namespace) -> int:
    telemetry = None
    if args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    graph, initial, cache_status, cache, prepared = _acquire_suite_graph(
        args, telemetry=telemetry)
    reorder, plan, layout, reorder_status = _resolve_reorder(
        args, graph, cache=cache, prepared=prepared, telemetry=telemetry)
    result = run_algorithm(args.algorithm, graph, initial, seed=args.seed,
                           engine=args.engine, telemetry=telemetry,
                           workers=args.workers, flight_dir=args.flight_dir,
                           reorder=reorder, reorder_plan=plan,
                           reorder_layout=layout)
    verify_maximum(graph, result.matching)
    if telemetry is not None:
        from repro.telemetry import write_prometheus

        write_prometheus(telemetry.metrics, args.metrics_out)
        print(f"metrics      : wrote {args.metrics_out} (Prometheus text format)",
              file=sys.stderr)
    if args.report:
        from repro.instrument.report import run_report

        print(f"graph        : {args.graph} ({suite_counterpart(args.graph)})")
        print(run_report(result, machine=_machine_registry()[args.machine],
                         threads=args.threads))
        return 0
    c = result.counters
    print(f"graph        : {args.graph} ({suite_counterpart(args.graph)}); n={graph.num_vertices:,} m={graph.num_directed_edges:,}")
    if cache_status is not None:
        print(cache_status)
    if reorder_status is not None:
        print(reorder_status)
    print(f"algorithm    : {result.algorithm}")
    print(f"|M|          : {result.cardinality:,} (maximum, certified)")
    print(f"fraction     : {result.matching.matching_fraction():.4f} of |V|")
    print(f"edges        : {c.edges_traversed:,} traversed")
    print(f"phases       : {c.phases}")
    print(f"augmentations: {c.augmentations} (avg path length {c.avg_augmenting_path_length:.2f})")
    print(f"wall time    : {result.wall_seconds:.3f}s")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    print(experiments.table2.run(scale=args.scale).render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        fn = _EXPERIMENTS.get(name)
        if fn is None:
            print(f"unknown experiment {name!r}; known: {', '.join(_EXPERIMENTS)} or 'all'",
                  file=sys.stderr)
            return 2
        result = fn(args.scale)
        print(result.render())
        print()
    return 0


def _read_graph_file(path: str, fmt: str):
    """Load a graph file by format name; returns ``(graph, labels-or-None)``.

    SNAP edge lists compact sparse vertex ids, so for them the original-id
    label arrays come back too (see
    :class:`repro.graph.readers.LabelledGraph`) and ``repro-match match``
    reports matched pairs in the file's own ids.
    """
    from repro.graph.readers import read_dimacs, read_snap_edgelist

    if fmt == "auto":
        suffix = path.rsplit(".", 1)[-1].lower()
        fmt = {"mtx": "mtx", "gr": "dimacs", "dimacs": "dimacs",
               "txt": "snap", "snap": "snap", "edges": "snap"}.get(suffix, "mtx")
    if fmt == "snap":
        labelled = read_snap_edgelist(path, return_labels=True)
        return labelled.graph, labelled
    readers = {"mtx": read_matrix_market, "dimacs": read_dimacs}
    return readers[fmt](path), None


def _cmd_match(args: argparse.Namespace) -> int:
    graph, labels = _read_graph_file(args.path, args.format)
    result = run_algorithm(args.algorithm, graph, seed=args.seed, engine=args.engine,
                           workers=args.workers, reorder=args.reorder)
    verify_maximum(graph, result.matching)
    print(f"{args.path}: n_rows={graph.n_x:,} n_cols={graph.n_y:,} nnz={graph.nnz:,}")
    print(f"maximum matching (structural rank): {result.cardinality:,}")
    print(f"algorithm {result.algorithm}: {result.counters.edges_traversed:,} edges, "
          f"{result.counters.phases} phases, {result.wall_seconds:.3f}s")
    if labels is not None:
        pairs = result.matching.pairs()
        shown = ", ".join(
            f"({labels.x_ids[x]}, {labels.y_ids[y]})" for x, y in pairs[:args.show_pairs]
        )
        suffix = ", ..." if len(pairs) > args.show_pairs else ""
        print(f"original ids : compacted from {labels.x_ids.size:,} source / "
              f"{labels.y_ids.size:,} target ids in the file")
        if shown:
            print(f"matched pairs: {shown}{suffix} (file ids)")
    return 0


def _cmd_report_all(args: argparse.Namespace) -> int:
    """Run every experiment and write one consolidated report file.

    With ``--run-dir`` each experiment's rendered report is checkpointed
    through the batch service's stage cache, so a crashed or interrupted
    ``report-all`` resumes where it stopped instead of recomputing every
    figure (events land in the run directory's ``events.jsonl``).
    """
    run_dir = None
    if args.run_dir:
        from repro.service.checkpoint import RunDirectory

        run_dir = RunDirectory(args.run_dir)
    lines = []
    reused = 0
    for name, fn in _EXPERIMENTS.items():
        key = f"scale={args.scale}"
        text = run_dir.cached_report(name, key) if run_dir is not None else None
        if text is None:
            text = fn(args.scale).render()
            if run_dir is not None:
                from repro.service.events import JOB_DONE, EventLog

                run_dir.record_report(name, key, text)
                with EventLog(run_dir.events_path) as log:
                    log.emit(JOB_DONE, f"report:{name}", stage="report-all")
        else:
            reused += 1
        lines.append("=" * 78)
        lines.append(name)
        lines.append("=" * 78)
        lines.append(text)
        lines.append("")
    text = "\n".join(lines)
    if run_dir is not None and reused:
        print(f"resumed {reused}/{len(_EXPERIMENTS)} experiment reports from {args.run_dir}",
              file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(_EXPERIMENTS)} experiment reports to {args.out}")
    else:
        print(text)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a fault-tolerant batch of matching jobs with checkpoint/resume."""
    from repro.instrument.report import batch_report
    from repro.service import (
        BatchExecutor,
        RetryPolicy,
        load_jobs_file,
        parse_faults,
        read_events,
        suite_jobs,
        summarize_events,
    )

    if args.jobs:
        jobs = load_jobs_file(args.jobs)
    else:
        jobs = suite_jobs(
            algorithm=args.algorithm,
            scale=args.scale,
            graphs=args.graphs,
            engine=args.engine,
            seed=args.seed,
            deadline_seconds=args.deadline,
        )
    telemetry = None
    if args.metrics_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    executor = BatchExecutor(
        args.run_dir,
        retry=RetryPolicy(max_attempts=args.retries, base_delay=args.backoff),
        faults=parse_faults(args.inject or []),
        default_deadline=args.deadline,
        telemetry=telemetry,
        progress=lambda line: print(line, file=sys.stderr),
        cache=_open_cache(args, telemetry=telemetry),
    )
    outcomes = executor.run_batch(jobs)
    if telemetry is not None:
        from repro.service.events import EventLog
        from repro.telemetry import export_jsonl, write_prometheus

        write_prometheus(telemetry.metrics, args.metrics_out)
        with EventLog(executor.run_dir.events_path) as log:
            export_jsonl(log, telemetry.tracer, telemetry.metrics)
        print(f"metrics: wrote {args.metrics_out}; telemetry spans appended to "
              f"events.jsonl", file=sys.stderr)
    events = read_events(executor.run_dir.events_path)
    print(batch_report(outcomes, summarize_events(events)))
    print(f"run directory: {executor.run_dir.root} "
          f"(events.jsonl, manifest.json, checkpoints/)")
    if all(o.succeeded for o in outcomes):
        return 0
    print("some jobs did not complete; re-run with the same --run-dir to "
          "resume the completed ones from checkpoints", file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the online matching daemon until a client sends shutdown."""
    from repro.service.online import MatchingDaemon, OnlineConfig
    from repro.telemetry import Telemetry, write_prometheus

    telemetry = Telemetry()
    daemon = MatchingDaemon(
        OnlineConfig(
            socket_path=args.socket,
            max_sessions=args.max_sessions,
            default_deadline_seconds=args.deadline,
            cache_dir=args.cache_dir,
            metrics_port=args.metrics_port,
            flight_dir=args.flight_dir,
        ),
        telemetry=telemetry,
    )
    print(f"online daemon listening on {args.socket} "
          f"(max_sessions={args.max_sessions}"
          + (f", default deadline {args.deadline}s" if args.deadline else "")
          + (f", cache {args.cache_dir}" if args.cache_dir else "")
          + (f", metrics port {args.metrics_port}"
             if args.metrics_port is not None else "")
          + (f", flight dumps to {args.flight_dir}" if args.flight_dir else "")
          + ")", file=sys.stderr)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    if args.metrics_out:
        write_prometheus(telemetry.metrics, args.metrics_out)
        print(f"metrics: wrote {args.metrics_out}", file=sys.stderr)
    print(f"served {daemon.requests_served} requests; "
          f"{daemon.sessions.evictions} session evictions", file=sys.stderr)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """Drive a scripted session against a running daemon.

    Reads one JSON request per line (``{"cmd": ..., "session": ..., ...}``)
    from ``--script`` or stdin — the ``id`` field is assigned by the
    client — and prints each result as one JSON line. Exits non-zero on
    the first failed request.
    """
    import json

    from repro.errors import ServiceError
    from repro.service.online import OnlineClient

    if args.script:
        with open(args.script, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = sys.stdin.readlines()
    with OnlineClient(args.socket) as client:
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"script line {lineno} is not JSON: {exc}", file=sys.stderr)
                return 1
            if not isinstance(request, dict) or "cmd" not in request:
                print(f"script line {lineno} needs a 'cmd' field", file=sys.stderr)
                return 1
            cmd = request.pop("cmd")
            session = request.pop("session", None)
            try:
                result = client.request(cmd, session, **request)
            except ServiceError as exc:
                print(f"request {lineno} ({cmd}) failed: {exc}", file=sys.stderr)
                return 1
            print(json.dumps({"cmd": cmd, "result": result},
                             separators=(",", ":")))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.io import write_matrix_market
    from repro.graph.serialize import save_graph

    sg = get_suite_graph(args.graph, scale=args.scale)
    if args.out.endswith(".npz"):
        save_graph(sg.graph, args.out)
    else:
        write_matrix_market(sg.graph, args.out)
    print(f"wrote {args.graph} (n={sg.graph.num_vertices:,}, "
          f"m={sg.graph.num_directed_edges:,}) to {args.out}")
    return 0


def _cmd_btf(args: argparse.Namespace) -> int:
    from repro.apps.btf import block_triangular_form
    from repro.apps.dulmage_mendelsohn import dulmage_mendelsohn
    from repro.core.driver import ms_bfs_graft

    graph = read_matrix_market(args.path)
    result = ms_bfs_graft(graph, emit_trace=False)
    verify_maximum(graph, result.matching)
    dm = dulmage_mendelsohn(graph, result.matching)
    btf = block_triangular_form(graph, result.matching)
    print(f"{args.path}: n_rows={graph.n_x:,} n_cols={graph.n_y:,} nnz={graph.nnz:,}")
    print(f"structural rank: {result.cardinality:,}")
    print(dm.summary())
    print(f"square part: {btf.num_square_blocks} diagonal blocks")
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.distributed import (
        BSPCostModel,
        ClusterSpec,
        distributed_ms_bfs_graft,
        distributed_ms_bfs_graft_2d,
    )

    engine = (
        distributed_ms_bfs_graft_2d if args.decomposition == "2d"
        else distributed_ms_bfs_graft
    )
    sg = get_suite_graph(args.graph, scale=args.scale)
    from repro.bench.runner import suite_initializer

    init = suite_initializer(sg.graph, seed=args.seed)
    print(f"graph {args.graph}: n={sg.graph.num_vertices:,}, "
          f"m={sg.graph.num_directed_edges:,} [{args.decomposition.upper()} decomposition]")
    for ranks in args.ranks:
        result = engine(sg.graph, init, ranks=ranks)
        verify_maximum(sg.graph, result.matching)
        total, comp, comm = BSPCostModel(
            ClusterSpec(name="cluster", ranks=ranks)
        ).decompose(result.log)
        print(f"  ranks={ranks:4d}: |M|={result.cardinality:,} "
              f"supersteps={result.log.num_supersteps} "
              f"total={total * 1e3:.3f}ms (compute {comp * 1e3:.3f}, comm {comm * 1e3:.3f})")
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.bench.kernels_bench import (
        render_kernel_bench,
        run_kernel_bench,
        write_kernel_bench,
    )

    doc = run_kernel_bench(scale=args.scale, repeats=args.repeats, graphs=args.graphs,
                           cache=_open_cache(args), workers=args.workers,
                           mp_scaling=args.mp_scaling, reorder=args.reorder)
    print(render_kernel_bench(doc))
    if args.out:
        write_kernel_bench(doc, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one algorithm with full telemetry and write a Chrome trace."""
    from repro.telemetry import Telemetry, write_chrome_trace, write_prometheus

    telemetry = Telemetry()
    graph, initial, cache_status, cache, prepared = _acquire_suite_graph(
        args, telemetry=telemetry)
    reorder, plan, layout, reorder_status = _resolve_reorder(
        args, graph, cache=cache, prepared=prepared, telemetry=telemetry)
    result = run_algorithm(args.algorithm, graph, initial, seed=args.seed,
                           engine=args.engine, telemetry=telemetry,
                           workers=args.workers,
                           flight_dir=args.flight_dir,
                           mp_min_level_items=args.mp_min_level,
                           reorder=reorder, reorder_plan=plan,
                           reorder_layout=layout)
    verify_maximum(graph, result.matching)
    out = args.out or f"{args.graph}.trace.json"
    write_chrome_trace(
        telemetry.tracer, out,
        metadata={"graph": args.graph, "scale": args.scale,
                  "algorithm": result.algorithm,
                  "cardinality": int(result.cardinality)},
    )
    # merged_coverage() == coverage() when there are no worker lanes, and
    # additionally requires every mp worker lane to account for its own
    # window (scan + idle spans) when there are.
    coverage = telemetry.tracer.merged_coverage()
    lanes = telemetry.tracer.lane_coverage()
    spans = [s for s in telemetry.tracer.spans if not s.open]
    print(f"graph    : {args.graph} (scale {args.scale}); "
          f"n={graph.num_vertices:,} m={graph.num_directed_edges:,}")
    if cache_status is not None:
        print(cache_status.replace("cache        :", "cache    :"))
    if reorder_status is not None:
        print(reorder_status.replace("reorder      :", "reorder  :"))
    print(f"|M|      : {result.cardinality:,} (maximum, certified)")
    print(f"trace    : {out} ({len(spans)} spans; open in "
          f"https://ui.perfetto.dev or chrome://tracing)")
    if lanes:
        lane_text = ", ".join(
            f"pid {pid} {cov:.1%}" for pid, cov in sorted(lanes.items())
        )
        print(f"lanes    : {len(lanes)} mp worker lanes ({lane_text})")
    print(f"coverage : {coverage:.1%} of the run is covered by spans "
          f"(master phases{' + worker lanes' if lanes else ''})")
    if args.metrics_out:
        write_prometheus(telemetry.metrics, args.metrics_out)
        print(f"metrics  : {args.metrics_out} (Prometheus text format)")
    if args.jsonl_out:
        from repro.telemetry import write_telemetry_jsonl

        n = write_telemetry_jsonl(args.jsonl_out, telemetry.tracer, telemetry.metrics)
        print(f"jsonl    : {args.jsonl_out} ({n} records, EventLog-compatible)")
    if coverage < args.min_coverage:
        print(f"trace coverage {coverage:.1%} below the required "
              f"{args.min_coverage:.1%}", file=sys.stderr)
        return 1
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    """Compare a fresh kernel-bench run against the committed baseline."""
    from repro.bench.perf_check import parse_tolerance, run_perf_check

    tolerance = parse_tolerance(args.tolerance)
    fresh = None
    if args.fresh:
        from repro.bench.kernels_bench import load_kernel_bench

        fresh = load_kernel_bench(args.fresh)
    report = run_perf_check(
        args.baseline,
        tolerance=tolerance,
        scale=args.scale,
        repeats=args.repeats,
        graphs=args.graphs,
        fresh=fresh,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    """Manage the content-addressed graph-preparation cache."""
    from repro.cache import DEFAULT_MAX_BYTES, GraphCache

    max_bytes = getattr(args, "max_bytes", None) or DEFAULT_MAX_BYTES
    cache = GraphCache(args.cache_dir, max_bytes=max_bytes)
    if args.action == "warm":
        names = args.graphs or suite_specs()
        for name in names:
            prepared = cache.prepare_suite(name, args.scale)
            for seed in args.seeds:
                cache.warm_start(prepared, seed)
            state = "hit" if prepared.from_cache else "built"
            print(f"{name:<16} {state:<5} {prepared.key[:12]} "
                  f"n={prepared.graph.num_vertices:,} nnz={prepared.graph.nnz:,} "
                  f"seeds={args.seeds}")
        print(f"store: {cache.total_bytes:,} bytes in {len(cache.entries())} "
              f"entr{'y' if len(cache.entries()) == 1 else 'ies'} at {cache.root}")
        return 0
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            print(f"{cache.root}: empty cache")
            return 0
        for e in entries:
            if "corrupt" in e:
                print(f"{e['key'][:12]}  CORRUPT: {e['corrupt']}")
                continue
            seeds = f" ks-seeds={e['warm_seeds']}" if e.get("warm_seeds") else ""
            kind = e["kind"]
            source = e["source"]
            if kind == "layout":
                # Derived entries: show the strategy and the parent entry
                # they were permuted from.
                kind = f"layout[{e.get('strategy', '?')}]"
                source = f"{source} <- {(e.get('parent') or '?')[:12]}"
            print(f"{e['key'][:12]}  {e['bytes']:>12,} B  lru-seq={e['seq']:<6} "
                  f"{kind}: {source} (n_x={e['n_x']:,} n_y={e['n_y']:,} "
                  f"nnz={e['nnz']:,}){seeds}")
        print(f"total: {cache.total_bytes:,} bytes in {len(entries)} entries "
              f"(cap {cache.max_bytes:,})")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    # verify: deep checksum pass
    problems = cache.verify()
    checked = len(cache.entries())
    for key, problem in problems:
        print(f"{key[:12]}: {problem}")
    if problems:
        print(f"{len(problems)}/{checked} entries corrupt", file=sys.stderr)
        return 1
    print(f"verified {checked} entr{'y' if checked == 1 else 'ies'}: "
          f"all checksums match")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import DEFAULT_ROOT, RULES, filter_rules, run_lint, summarize

    try:
        rules = filter_rules(RULES, args.select, args.ignore)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    roots = args.paths or [str(DEFAULT_ROOT)]
    violations = []
    for root in roots:
        violations.extend(run_lint(root, rules))
    for violation in violations:
        print(violation.render())
    if violations:
        print(summarize(violations), file=sys.stderr)
        return 1
    print(f"lint clean ({', '.join(roots)})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.lint import DEFAULT_ROOT
    from repro.analysis.phasecheck import (
        DEFAULT_BASELINE_NAME,
        apply_baseline,
        format_json,
        format_sarif,
        format_text,
        load_baseline,
        run_analyze,
        summarize_findings,
        write_baseline,
    )

    root = Path(args.root) if args.root else DEFAULT_ROOT
    if not root.exists():
        print(f"analyze: no such path: {root}", file=sys.stderr)
        return 2
    try:
        findings = run_analyze(root, args.select, args.ignore)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    baseline_path: Path | None
    if args.baseline == "none":
        baseline_path = None
    elif args.baseline == "auto":
        candidate = Path.cwd() / DEFAULT_BASELINE_NAME
        baseline_path = candidate if candidate.is_file() else None
    else:
        baseline_path = Path(args.baseline)

    if args.write_baseline:
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        write_baseline(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    acknowledged: set[str] = set()
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"analyze: baseline not found: {baseline_path}", file=sys.stderr)
            return 2
        acknowledged = load_baseline(baseline_path)
    fresh, baselined = apply_baseline(findings, acknowledged)

    if args.format == "json":
        report = format_json(fresh, baselined, str(root))
    elif args.format == "sarif":
        report = format_sarif(fresh)
    else:
        report = format_text(fresh, baselined)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    if args.format != "text" or args.output:
        print(summarize_findings(fresh, baselined), file=sys.stderr)
    return 1 if fresh else 0


def _cmd_racecheck(args: argparse.Namespace) -> int:
    from repro.analysis.racecheck import run_racecheck
    from repro.graph.generators import random_bipartite
    from repro.matching.greedy import greedy_matching

    if args.graph is not None:
        sg = get_suite_graph(args.graph, scale=args.scale)
        graph = sg.graph
        label = f"{args.graph} (scale {args.scale})"
    else:
        # Default instance: contended enough that several threads extend the
        # same alternating tree, so the benign leaf race actually fires.
        graph = random_bipartite(30, 30, 120, seed=42)
        label = "random-bipartite n=30x30 m=120"
    init = greedy_matching(graph, shuffle=True, seed=1).matching
    faults = (args.inject,) if args.inject else ()
    if args.engine == "numpy":
        # The vectorized engine is deterministic: one audit, no seed sweep.
        seeds = range(args.seed, args.seed + 1)
        print(f"racecheck: {label}, engine=numpy (bulk-kernel audit)")
    else:
        seeds = range(args.seed, args.seed + args.seeds)
        print(f"racecheck: {label}, threads={args.threads}, "
              f"seeds {args.seed}..{args.seed + args.seeds - 1}"
              + (f", fault={args.inject}" if args.inject else ""))
    benign_total = harmful_total = 0
    for s in seeds:
        outcome = run_racecheck(
            graph, init, threads=args.threads, seed=s, fault_injection=faults,
            engine=args.engine,
        )
        report = outcome.report
        benign_total += len(report.benign)
        harmful_total += len(report.harmful)
        status = f"|M|={outcome.result.cardinality}" if outcome.result else "aborted"
        print(f"  seed {s}: {report.events} accesses in {report.regions} parallel "
              f"regions, {len(report.benign)} benign / {len(report.harmful)} harmful "
              f"race(s), {outcome.invariant_checks} invariant sweeps, {status}")
        if report.error:
            print(f"    run aborted: {report.error}")
        for race in report.harmful:
            print(f"    {race.render()}")
    print(f"total: {benign_total} benign race(s) "
          f"(whitelisted leaf/root_x semantics), {harmful_total} harmful")
    if harmful_total:
        print("HARMFUL data races detected", file=sys.stderr)
        return 1
    print("no harmful data races: visited claims are atomic, "
          "remaining races are the paper's benign ones")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-match argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-match",
        description="MS-BFS-Graft maximum bipartite matching (IPDPS 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm on one suite graph")
    p_run.add_argument("--graph", choices=suite_specs(), default="rmat")
    p_run.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="ms-bfs-graft")
    p_run.add_argument("--scale", type=float, default=0.3)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--engine",
                       choices=["auto", "numpy", "python", "interleaved", "mp"],
                       default=None,
                       help="override the backend dispatcher (MS-BFS-Graft "
                            "family only; default: cost-model auto-dispatch)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="process count for the mp engine; with --engine "
                            "auto, >= 2 lets the cost model consider mp")
    p_run.add_argument("--report", action="store_true",
                       help="print the full instrumented run report")
    p_run.add_argument("--machine", choices=["mirasol", "edison", "laptop", "manycore"],
                       default="mirasol",
                       help="simulated machine for the --report cost model "
                            "(default: the paper's Mirasol)")
    p_run.add_argument("--threads", type=int, default=40,
                       help="simulated thread count for the --report cost "
                            "model (default: 40, the paper's Mirasol runs)")
    p_run.add_argument("--flight-dir", default=None,
                       help="mp engine: dump the crash flight recorder here "
                            "on worker crashes / deadline expiry")
    p_run.add_argument("--metrics-out", default=None,
                       help="write run metrics here in Prometheus text "
                            "exposition format")
    p_run.add_argument("--cache-dir", default=None,
                       help="content-addressed graph cache directory; warm "
                            "entries skip generator/ingest work entirely "
                            "(see 'repro-match cache')")
    p_run.add_argument("--reorder", choices=REORDER_CHOICES, default="none",
                       help="locality-aware vertex reordering before the run "
                            "(matching mapped back afterwards); 'auto' joins "
                            "the engine dispatch decision, and with "
                            "--cache-dir the permuted layout is cached per "
                            "strategy")
    p_run.set_defaults(fn=_cmd_run)

    p_suite = sub.add_parser("suite", help="print the Table II suite report")
    p_suite.add_argument("--scale", type=float, default=0.3)
    p_suite.set_defaults(fn=_cmd_suite)

    p_exp = sub.add_parser("experiment", help="run a paper experiment by id")
    p_exp.add_argument("name", choices=[*_EXPERIMENTS, "all"])
    p_exp.add_argument("--scale", type=float, default=0.2)
    p_exp.set_defaults(fn=_cmd_experiment)

    p_match = sub.add_parser("match", help="match a MatrixMarket file")
    p_match.add_argument("path")
    p_match.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="ms-bfs-graft")
    p_match.add_argument("--seed", type=int, default=0)
    p_match.add_argument("--engine",
                         choices=["auto", "numpy", "python", "interleaved", "mp"],
                         default=None,
                         help="override the backend dispatcher (MS-BFS-Graft "
                              "family only)")
    p_match.add_argument("--workers", type=int, default=None,
                         help="process count for the mp engine")
    p_match.add_argument("--format", choices=["auto", "mtx", "snap", "dimacs"],
                         default="auto")
    p_match.add_argument("--show-pairs", type=int, default=5,
                         help="matched pairs to echo in the file's original "
                              "vertex ids (SNAP inputs only)")
    p_match.add_argument("--reorder", choices=REORDER_CHOICES, default="none",
                         help="locality-aware vertex reordering before the "
                              "run; the matching is reported in the file's "
                              "own numbering either way")
    p_match.set_defaults(fn=_cmd_match)

    p_rep = sub.add_parser("report-all", help="run every experiment into one report")
    p_rep.add_argument("--scale", type=float, default=0.2)
    p_rep.add_argument("--out", default=None)
    p_rep.add_argument("--run-dir", default=None,
                       help="checkpoint each experiment's report here so an "
                            "interrupted report-all resumes instead of recomputing")
    p_rep.set_defaults(fn=_cmd_report_all)

    p_batch = sub.add_parser(
        "batch",
        help="fault-tolerant batch of matching jobs (deadlines, retries, "
             "checkpoint/resume)",
    )
    p_batch.add_argument("--run-dir", required=True,
                         help="run directory (manifest, events.jsonl, checkpoints); "
                              "re-running with the same directory resumes it")
    p_batch.add_argument("--jobs", default=None,
                         help="JSON job-queue file (list of job specs); default: "
                              "the Table II suite as one job per graph")
    p_batch.add_argument("--graphs", nargs="+", default=None, choices=suite_specs(),
                         help="subset of suite graphs (ignored with --jobs)")
    p_batch.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                         default="ms-bfs-graft")
    p_batch.add_argument("--scale", type=float, default=0.2)
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument("--engine",
                         choices=["auto", "numpy", "python", "interleaved", "mp"],
                         default=None)
    p_batch.add_argument("--deadline", type=float, default=None,
                         help="per-job soft deadline in seconds (checked at "
                              "engine phase boundaries)")
    p_batch.add_argument("--retries", type=int, default=3,
                         help="max attempts per engine before degrading/failing")
    p_batch.add_argument("--backoff", type=float, default=0.05,
                         help="base retry backoff in seconds (exponential + jitter)")
    p_batch.add_argument("--inject", nargs="+", default=None,
                         metavar="FAULT[:VALUE]",
                         help="deterministic fault injection: flaky-engine[:k], "
                              "slow-phase[:seconds]")
    p_batch.add_argument("--metrics-out", default=None,
                         help="write batch metrics (job/retry/degradation "
                              "counters + engine metrics) here in Prometheus "
                              "text format; also appends telemetry spans to "
                              "the run directory's events.jsonl")
    p_batch.add_argument("--cache-dir", default=None,
                         help="resolve job graphs through this "
                              "content-addressed cache directory")
    p_batch.set_defaults(fn=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="online matching daemon (sessions + streaming edge updates "
             "over a local socket)",
    )
    p_serve.add_argument("--socket", required=True,
                         help="Unix socket path to listen on")
    p_serve.add_argument("--max-sessions", type=int, default=16,
                         help="LRU cap on resident sessions (default 16)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="default per-request repair deadline in seconds "
                              "(requests may override with deadline_seconds)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="content-addressed cache directory backing "
                              "snapshot/load (no cache: those commands error)")
    p_serve.add_argument("--metrics-out", default=None,
                         help="write daemon metrics here (Prometheus text "
                              "format) after shutdown")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="serve live metrics over HTTP GET /metrics on "
                              "this loopback port while running (0 picks an "
                              "ephemeral port)")
    p_serve.add_argument("--flight-dir", default=None,
                         help="keep a flight-recorder ring of recent requests "
                              "and dump it here as JSONL whenever a request "
                              "fails")
    p_serve.set_defaults(fn=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="drive a scripted session against a running online daemon",
    )
    p_client.add_argument("--socket", required=True,
                          help="Unix socket path of the daemon")
    p_client.add_argument("--script", default=None,
                          help="file of JSON requests, one per line "
                               "(default: stdin); '#' lines are comments")
    p_client.set_defaults(fn=_cmd_client)

    p_gen = sub.add_parser("generate", help="write a suite graph to .mtx or .npz")
    p_gen.add_argument("--graph", choices=suite_specs(), default="rmat")
    p_gen.add_argument("--scale", type=float, default=0.3)
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(fn=_cmd_generate)

    p_btf = sub.add_parser("btf", help="Dulmage-Mendelsohn/BTF report for a MatrixMarket file")
    p_btf.add_argument("path")
    p_btf.set_defaults(fn=_cmd_btf)

    p_dist = sub.add_parser("distributed", help="run distributed MS-BFS-Graft (BSP model)")
    p_dist.add_argument("--graph", choices=suite_specs(), default="copapers-like")
    p_dist.add_argument("--scale", type=float, default=0.3)
    p_dist.add_argument("--seed", type=int, default=0)
    p_dist.add_argument("--ranks", type=int, nargs="+", default=[1, 4, 16, 64])
    p_dist.add_argument("--decomposition", choices=["1d", "2d"], default="1d")
    p_dist.set_defaults(fn=_cmd_distributed)

    p_bk = sub.add_parser(
        "bench-kernels",
        help="time the python/numpy/mp backends (BENCH_kernels.json baseline)",
    )
    p_bk.add_argument("--scale", type=float, default=1.0,
                      help="instance scale; 1.0 = the 2^14-vertex RMAT baseline")
    p_bk.add_argument("--repeats", type=int, default=3,
                      help="timed runs per (graph, engine); best + mean recorded")
    p_bk.add_argument("--graphs", nargs="+", default=None,
                      choices=["rmat", "er", "skewed"],
                      help="subset of bench inputs (default: all three)")
    p_bk.add_argument("--workers", type=int, default=2,
                      help="mp engine pool size for the per-graph timings")
    p_bk.add_argument("--mp-scaling", action="store_true",
                      help="also sweep the rmat entry over 1/2/4 mp workers "
                           "and record the host's dispatch decision")
    p_bk.add_argument("--out", default=None,
                      help="write the validated JSON document here "
                           "(e.g. benchmarks/BENCH_kernels.json)")
    p_bk.add_argument("--cache-dir", default=None,
                      help="resolve bench inputs through this "
                           "content-addressed cache directory")
    p_bk.add_argument("--reorder", choices=REORDER_CHOICES, default="none",
                      help="record one row per (graph, strategy): 'none' "
                           "keeps the original numbering only, a concrete "
                           "strategy adds that ordering, 'auto' adds all "
                           "three plus the dispatcher's joint pick")
    p_bk.set_defaults(fn=_cmd_bench_kernels)

    p_trace = sub.add_parser(
        "trace",
        help="run with telemetry and write a chrome://tracing / Perfetto trace",
    )
    p_trace.add_argument("graph", choices=suite_specs(),
                         help="suite graph to trace")
    p_trace.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                         default="ms-bfs-graft")
    p_trace.add_argument("--scale", type=float, default=0.3)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--engine",
                         choices=["auto", "numpy", "python", "interleaved", "mp"],
                         default=None)
    p_trace.add_argument("--workers", type=int, default=None,
                         help="process count for the mp engine")
    p_trace.add_argument("--out", default=None,
                         help="trace path (default: <graph>.trace.json)")
    p_trace.add_argument("--metrics-out", default=None,
                         help="also write metrics in Prometheus text format")
    p_trace.add_argument("--jsonl-out", default=None,
                         help="also write spans+metrics as EventLog-compatible JSONL")
    p_trace.add_argument("--min-coverage", type=float, default=0.0,
                         help="fail (exit 1) if spans cover less than this "
                              "fraction of the run (e.g. 0.95); with mp worker "
                              "lanes this is the minimum over the master "
                              "phase coverage and every worker lane")
    p_trace.add_argument("--mp-min-level", type=int, default=None,
                         help="mp engine: override the per-level scatter "
                              "floor (0 forces every level through the "
                              "worker pool, giving full worker lanes)")
    p_trace.add_argument("--flight-dir", default=None,
                         help="mp engine: dump the crash flight recorder "
                              "here on worker crashes / deadline expiry")
    p_trace.add_argument("--cache-dir", default=None,
                         help="content-addressed graph cache directory; on a "
                              "warm entry the trace contains no build span")
    p_trace.add_argument("--reorder", choices=REORDER_CHOICES, default="none",
                         help="locality-aware vertex reordering before the "
                              "run; reorder_plan/apply/invert appear as "
                              "spans in the trace")
    p_trace.set_defaults(fn=_cmd_trace)

    p_pc = sub.add_parser(
        "perf-check",
        help="regression gate: fresh kernel-bench vs the committed baseline",
    )
    p_pc.add_argument("--baseline", default="benchmarks/BENCH_kernels.json",
                      help="committed baseline document to compare against")
    p_pc.add_argument("--tolerance", default="5x",
                      help="allowed per-edge slowdown factor, e.g. '5x' or '2.5' "
                           "(generous by default: the gate catches "
                           "order-of-magnitude regressions, not noise)")
    p_pc.add_argument("--scale", type=float, default=0.05,
                      help="scale of the fresh timing run (per-edge "
                           "normalisation makes scales comparable)")
    p_pc.add_argument("--repeats", type=int, default=1)
    p_pc.add_argument("--graphs", nargs="+", default=None,
                      choices=["rmat", "er", "skewed"],
                      help="subset of bench inputs to re-time")
    p_pc.add_argument("--fresh", default=None,
                      help="compare this pre-recorded benchmark document "
                           "instead of re-timing (passing the baseline itself "
                           "must exit 0)")
    p_pc.set_defaults(fn=_cmd_perf_check)

    p_cache = sub.add_parser(
        "cache",
        help="manage the content-addressed graph-preparation cache",
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    cache_common = argparse.ArgumentParser(add_help=False)
    cache_common.add_argument("--cache-dir", required=True,
                              help="cache root directory")
    p_cw = cache_sub.add_parser(
        "warm", parents=[cache_common],
        help="prebuild suite graphs (and Karp-Sipser warm starts) into the cache",
    )
    p_cw.add_argument("--graphs", nargs="+", default=None, choices=suite_specs(),
                      help="suite graphs to warm (default: all)")
    p_cw.add_argument("--scale", type=float, default=0.3,
                      help="suite scale to warm (matches 'run' default)")
    p_cw.add_argument("--seeds", type=int, nargs="+", default=[0],
                      help="initialiser seeds to precompute warm starts for")
    p_cw.add_argument("--max-bytes", type=int, default=None,
                      help="LRU size cap for the store (default 512 MiB)")
    cache_sub.add_parser("ls", parents=[cache_common],
                         help="list entries, least-recently-used first")
    cache_sub.add_parser("clear", parents=[cache_common],
                         help="delete every cache entry")
    cache_sub.add_parser(
        "verify", parents=[cache_common],
        help="deep integrity pass: SHA-256 every stored array against meta.json",
    )
    p_cache.set_defaults(fn=_cmd_cache)

    p_lint = sub.add_parser("lint", help="repo-specific AST lint rules (REP001-REP003)")
    p_lint.add_argument("paths", nargs="*",
                        help="package-shaped directories to lint (default: src/repro)")
    p_lint.add_argument("--select", action="append", default=None, metavar="RULE",
                        help="run only these rules (code or name; repeatable)")
    p_lint.add_argument("--ignore", action="append", default=None, metavar="RULE",
                        help="skip these rules (code or name; repeatable)")
    p_lint.set_defaults(fn=_cmd_lint)

    p_an = sub.add_parser(
        "analyze",
        help="phase-safety static analyzer: effect inference + engine "
             "contracts (REP001-REP008)",
    )
    p_an.add_argument("root", nargs="?", default=None,
                      help="package-shaped directory to analyze (default: src/repro)")
    p_an.add_argument("--format", choices=["text", "json", "sarif"], default="text",
                      help="report format (default: text)")
    p_an.add_argument("--baseline", default="auto", metavar="FILE",
                      help="baseline file of acknowledged findings; 'auto' picks "
                           "./analysis-baseline.json when present, 'none' disables")
    p_an.add_argument("--write-baseline", action="store_true",
                      help="write the current findings as the new baseline and exit")
    p_an.add_argument("--select", action="append", default=None, metavar="RULE",
                      help="run only these rules (code or name; repeatable)")
    p_an.add_argument("--ignore", action="append", default=None, metavar="RULE",
                      help="skip these rules (code or name; repeatable)")
    p_an.add_argument("--output", "-o", default=None, metavar="FILE",
                      help="write the report to FILE instead of stdout")
    p_an.set_defaults(fn=_cmd_analyze)

    p_rc = sub.add_parser(
        "racecheck",
        help="dynamic race detection + invariant checking on the interleaved engine",
    )
    p_rc.add_argument("--graph", choices=suite_specs(), default=None,
                      help="suite graph to check (default: a small contended instance)")
    p_rc.add_argument("--engine", choices=["interleaved", "numpy"],
                      default="interleaved",
                      help="interleaved: simulated schedules; numpy: audit the "
                           "vectorized kernels' self-reported bulk accesses")
    p_rc.add_argument("--scale", type=float, default=0.05)
    p_rc.add_argument("--threads", type=int, default=4)
    p_rc.add_argument("--seed", type=int, default=0, help="first schedule seed")
    p_rc.add_argument("--seeds", type=int, default=5,
                      help="number of schedule seeds to sweep")
    p_rc.add_argument("--inject", choices=["non-atomic-visited"], default=None,
                      help="inject a synchronisation fault (demonstrates harmful-race "
                           "detection; expect a nonzero exit)")
    p_rc.set_defaults(fn=_cmd_racecheck)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
