"""Readers for common public graph-exchange formats.

The paper's instances come from the UF sparse matrix collection
(MatrixMarket, see :mod:`repro.graph.io`); the same *kinds* of graphs are
also distributed as SNAP edge lists (wikipedia, web-Google, cit-Patents,
amazon0312 are all SNAP datasets) and DIMACS files (road networks). These
readers let users point the library at those files directly:

* :func:`read_snap_edgelist` — whitespace-separated ``u v`` pairs, ``#``
  comments, arbitrary (sparse) vertex ids; directed edges are read as
  row->column entries of the biadjacency matrix;
* :func:`read_dimacs` — the DIMACS ``p``/``a``/``e`` format used by the
  road-network challenge files.
"""

from __future__ import annotations

from pathlib import Path
from typing import NamedTuple, TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import _from_edge_arrays
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR


class LabelledGraph(NamedTuple):
    """A compacted bipartite graph plus its original vertex labels.

    ``x_ids[i]`` / ``y_ids[j]`` are the file's ids for compacted vertex
    ``i`` of X / ``j`` of Y, so a matched pair ``(x, mate_x[x])`` maps back
    to the on-disk edge ``(x_ids[x], y_ids[mate_x[x]])``.
    """

    graph: BipartiteCSR
    x_ids: np.ndarray
    y_ids: np.ndarray


def read_snap_edgelist(
    source: Union[str, Path, TextIO],
    *,
    comment: str = "#",
    return_labels: bool = False,
) -> Union[BipartiteCSR, LabelledGraph]:
    """Read a SNAP-style edge list as a bipartite graph.

    Each non-comment line holds a source and a target id (any further
    columns are ignored). Ids may be sparse and unordered; both sides are
    compacted independently, so a directed graph's rows become X and its
    targets Y — the standard bipartite view of a nonsymmetric matrix.

    With ``return_labels=True`` the original ids survive compaction: the
    result is a :class:`LabelledGraph` carrying the per-side label arrays,
    so matchings computed on the compacted graph can be reported in the
    file's own vertex ids (``repro-match match`` does exactly that).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_snap_edgelist(fh, comment=comment, return_labels=return_labels)
    src_ids: list[int] = []
    dst_ids: list[int] = []
    for lineno, line in enumerate(source, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith(comment):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected 'u v', got {stripped!r}")
        try:
            src_ids.append(int(parts[0]))
            dst_ids.append(int(parts[1]))
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer vertex id") from exc
    if not src_ids:
        graph = _from_edge_arrays(
            0, 0, np.empty(0, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE),
            validate=False,
        )
        empty_ids = np.empty(0, dtype=np.int64)
        return LabelledGraph(graph, empty_ids, empty_ids) if return_labels else graph
    src = np.asarray(src_ids, dtype=np.int64)
    dst = np.asarray(dst_ids, dtype=np.int64)
    if src.min() < 0 or dst.min() < 0:
        raise GraphFormatError("negative vertex ids are not supported")
    x_vals, xs = np.unique(src, return_inverse=True)
    y_vals, ys = np.unique(dst, return_inverse=True)
    graph = _from_edge_arrays(
        int(x_vals.size), int(y_vals.size),
        xs.astype(INDEX_DTYPE), ys.astype(INDEX_DTYPE), validate=False,
    )
    if return_labels:
        return LabelledGraph(graph, x_vals, y_vals)
    return graph


def read_dimacs(source: Union[str, Path, TextIO]) -> BipartiteCSR:
    """Read a DIMACS graph (``p sp|edge n m`` header, ``a``/``e`` edges).

    Vertices are 1-based in the file. The (possibly directed) graph is
    returned as its bipartite adjacency view: X = sources, Y = targets,
    both sized ``n``.

    Node-descriptor lines (``n <id> s|t`` in the max-flow format, ``n <id>``
    in the assignment format) are legal records that carry no adjacency
    information; they are validated for range and skipped.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_dimacs(fh)
    n = None
    declared_m = None
    xs: list[int] = []
    ys: list[int] = []
    for lineno, line in enumerate(source, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("c"):
            continue
        parts = stripped.split()
        if parts[0] == "p":
            if len(parts) < 4:
                raise GraphFormatError(f"line {lineno}: malformed problem line")
            try:
                n = int(parts[-2])
                declared_m = int(parts[-1])
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: malformed problem line") from exc
        elif parts[0] in ("a", "e"):
            if n is None:
                raise GraphFormatError(f"line {lineno}: edge before problem line")
            if len(parts) < 3:
                raise GraphFormatError(f"line {lineno}: malformed edge line")
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: non-integer endpoint") from exc
            if not (1 <= u <= n and 1 <= v <= n):
                raise GraphFormatError(f"line {lineno}: endpoint out of range 1..{n}")
            xs.append(u - 1)
            ys.append(v - 1)
        elif parts[0] == "n":
            # Max-flow/assignment node descriptors designate sources and
            # sinks; matching only needs the adjacency, so validate + skip.
            if n is None:
                raise GraphFormatError(f"line {lineno}: node descriptor before problem line")
            if len(parts) < 2:
                raise GraphFormatError(f"line {lineno}: malformed node descriptor")
            try:
                node_id = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: non-integer node id") from exc
            if not 1 <= node_id <= n:
                raise GraphFormatError(f"line {lineno}: node id out of range 1..{n}")
        else:
            raise GraphFormatError(f"line {lineno}: unknown record {parts[0]!r}")
    if n is None:
        raise GraphFormatError("missing problem ('p') line")
    if declared_m is not None and len(xs) != declared_m:
        raise GraphFormatError(f"declared {declared_m} edges, found {len(xs)}")
    return _from_edge_arrays(
        n, n,
        np.asarray(xs, dtype=INDEX_DTYPE), np.asarray(ys, dtype=INDEX_DTYPE),
        validate=False,
    )
