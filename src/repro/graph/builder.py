"""Builders converting external representations into :class:`BipartiteCSR`.

All builders deduplicate parallel edges, sort adjacency rows, and construct
both adjacency directions so that the result always satisfies the CSR
invariants checked by :class:`~repro.graph.csr.BipartiteCSR`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR


def _csr_from_sorted(
    n_rows: int, rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Build (ptr, adj) from edge arrays already sorted by (row, col)."""
    ptr = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    np.add.at(ptr, rows + 1, 1)
    np.cumsum(ptr, out=ptr)
    return ptr, cols.astype(INDEX_DTYPE, copy=True)


def from_edges(
    n_x: int,
    n_y: int,
    edges: Iterable[Tuple[int, int]] | np.ndarray | Sequence[Tuple[int, int]],
    *,
    validate: bool = True,
) -> BipartiteCSR:
    """Build a graph from ``(x, y)`` edge pairs.

    Accepts any iterable of pairs or an ``(m, 2)`` array. Out-of-range
    endpoints raise :class:`~repro.errors.GraphError`; duplicate edges are
    silently merged.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edge array must have shape (m, 2), got {arr.shape}")
    xs = arr[:, 0].astype(INDEX_DTYPE)
    ys = arr[:, 1].astype(INDEX_DTYPE)
    if xs.size:
        if xs.min() < 0 or xs.max() >= n_x:
            raise GraphError("edge endpoint out of range on the X side")
        if ys.min() < 0 or ys.max() >= n_y:
            raise GraphError("edge endpoint out of range on the Y side")
    return _from_edge_arrays(n_x, n_y, xs, ys, validate=validate)


def _from_edge_arrays(
    n_x: int, n_y: int, xs: np.ndarray, ys: np.ndarray, *, validate: bool = True
) -> BipartiteCSR:
    """Internal: build from (already range-checked) parallel edge arrays."""
    if xs.size:
        # Deduplicate via a combined key, then sort by (x, y).
        key = xs * np.int64(n_y) + ys
        key = np.unique(key)
        xs = (key // n_y).astype(INDEX_DTYPE)
        ys = (key % n_y).astype(INDEX_DTYPE)
    x_ptr, x_adj = _csr_from_sorted(n_x, xs, ys)
    # Transpose: sort by (y, x).
    order = np.lexsort((xs, ys))
    y_ptr, y_adj = _csr_from_sorted(n_y, ys[order], xs[order])
    return BipartiteCSR(n_x, n_y, x_ptr, x_adj, y_ptr, y_adj, validate=validate)


def from_biadjacency_lists(adjacency: Sequence[Sequence[int]], n_y: int | None = None) -> BipartiteCSR:
    """Build from a list of neighbour lists: ``adjacency[x]`` is x's Y list.

    ``n_y`` defaults to ``1 + max`` neighbour id (0 for an empty graph).
    """
    n_x = len(adjacency)
    xs: list[int] = []
    ys: list[int] = []
    for x, row in enumerate(adjacency):
        for y in row:
            xs.append(x)
            ys.append(int(y))
    if n_y is None:
        n_y = (max(ys) + 1) if ys else 0
    return from_edges(n_x, n_y, np.column_stack([xs, ys]) if xs else np.empty((0, 2), dtype=int))


def from_scipy_sparse(matrix, *, validate: bool = True) -> BipartiteCSR:
    """Build from a :mod:`scipy.sparse` biadjacency matrix.

    Rows map to X vertices and columns to Y vertices; the sparsity pattern
    defines the edges (explicit zeros are kept, matching the usual treatment
    of structural nonzeros in matching-based matrix orderings).
    """
    coo = matrix.tocoo()
    n_x, n_y = coo.shape
    xs = coo.row.astype(INDEX_DTYPE)
    ys = coo.col.astype(INDEX_DTYPE)
    return _from_edge_arrays(n_x, n_y, xs, ys, validate=validate)


def from_dense(matrix: np.ndarray) -> BipartiteCSR:
    """Build from a dense 0/1 (or truthy) biadjacency matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise GraphError(f"dense biadjacency must be 2-D, got ndim={matrix.ndim}")
    xs, ys = np.nonzero(matrix)
    return _from_edge_arrays(
        matrix.shape[0], matrix.shape[1], xs.astype(INDEX_DTYPE), ys.astype(INDEX_DTYPE)
    )


def from_networkx(graph, x_nodes: Sequence | None = None) -> BipartiteCSR:
    """Build from a networkx bipartite graph.

    ``x_nodes`` selects the X side; if omitted, nodes with attribute
    ``bipartite == 0`` form the X side (networkx's own convention).
    Returns the graph along with no mapping — use stable ``sorted`` order of
    each side for vertex numbering.
    """
    if x_nodes is None:
        x_nodes = [v for v, d in graph.nodes(data=True) if d.get("bipartite") == 0]
        if not x_nodes and graph.number_of_nodes() > 0:
            raise GraphError(
                "from_networkx needs x_nodes or 'bipartite' node attributes to split sides"
            )
    x_set = set(x_nodes)
    y_nodes = sorted((v for v in graph.nodes if v not in x_set), key=repr)
    x_sorted = sorted(x_set, key=repr)
    x_index = {v: i for i, v in enumerate(x_sorted)}
    y_index = {v: i for i, v in enumerate(y_nodes)}
    edges = []
    for u, v in graph.edges():
        if u in x_index and v in y_index:
            edges.append((x_index[u], y_index[v]))
        elif v in x_index and u in y_index:
            edges.append((x_index[v], y_index[u]))
        else:
            raise GraphError(f"edge ({u!r}, {v!r}) does not cross the bipartition")
    return from_edges(
        len(x_sorted),
        len(y_nodes),
        np.asarray(edges, dtype=INDEX_DTYPE).reshape(-1, 2),
    )


def to_scipy_sparse(graph: BipartiteCSR):
    """Export as a ``scipy.sparse.csr_matrix`` biadjacency (pattern of ones)."""
    import scipy.sparse as sp

    data = np.ones(graph.nnz, dtype=np.int8)
    return sp.csr_matrix(
        (data, graph.x_adj.copy(), graph.x_ptr.copy()), shape=(graph.n_x, graph.n_y)
    )


def to_networkx(graph: BipartiteCSR):
    """Export as a networkx Graph with nodes ``("x", i)`` / ``("y", j)``."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from((("x", i) for i in range(graph.n_x)), bipartite=0)
    g.add_nodes_from((("y", j) for j in range(graph.n_y)), bipartite=1)
    g.add_edges_from((("x", x), ("y", int(y))) for x, y in graph.edges())
    return g
