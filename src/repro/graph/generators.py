"""Synthetic bipartite graph generators.

The paper evaluates on three classes of graphs (Table II):

1. **scientific computing & road networks** — near-regular, low-degree,
   matching number close to 1 (``kkt_power``, ``hugetrace``, ``road_usa``,
   ``delaunay``): reproduced here by :func:`grid_bipartite`,
   :func:`road_like` and :func:`planted_matching`;
2. **scale-free** — skewed degrees, moderate matching number
   (``amazon0312``, ``cit-Patents``, ``copapersDBLP``, RMAT): reproduced by
   :func:`rmat_bipartite`, :func:`power_law_bipartite` and
   :func:`community_bipartite`;
3. **web & wiki networks** — very skewed, rectangular-ish, low matching
   number (``wikipedia``, ``web-Google``, ``wb-edu``): reproduced by
   :func:`power_law_bipartite` with many degree-0/1 rows (see
   :mod:`repro.bench.suite`).

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.BipartiteCSR`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import _from_edge_arrays, from_edges
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.util.rng import SeedLike, as_rng


def _sample_distinct_edges(
    n_x: int, n_y: int, nnz: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``nnz`` distinct (x, y) pairs uniformly at random.

    Uses rejection-free sampling when the requested density is high (sample
    the key space without replacement) and oversample-and-unique otherwise.
    """
    total = n_x * n_y
    if nnz > total:
        raise GraphError(f"cannot place {nnz} distinct edges in a {n_x}x{n_y} bipartite graph")
    if total <= 4 * nnz or total < 1 << 20:
        keys = rng.choice(total, size=nnz, replace=False)
    else:
        keys = np.unique(rng.integers(0, total, size=int(nnz * 1.2) + 16))
        while keys.shape[0] < nnz:
            extra = rng.integers(0, total, size=nnz)
            keys = np.unique(np.concatenate([keys, extra]))
        keys = rng.permutation(keys)[:nnz]
    xs = (keys // n_y).astype(INDEX_DTYPE)
    ys = (keys % n_y).astype(INDEX_DTYPE)
    return xs, ys


def random_bipartite(n_x: int, n_y: int, nnz: int, seed: SeedLike = None) -> BipartiteCSR:
    """Erdős–Rényi style ``G(n_x, n_y, m)``: exactly ``nnz`` distinct edges."""
    rng = as_rng(seed)
    xs, ys = _sample_distinct_edges(n_x, n_y, nnz, rng)
    return _from_edge_arrays(n_x, n_y, xs, ys, validate=False)


def random_bipartite_gnp(n_x: int, n_y: int, p: float, seed: SeedLike = None) -> BipartiteCSR:
    """Erdős–Rényi ``G(n_x, n_y, p)``: each edge present independently."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = as_rng(seed)
    nnz = rng.binomial(n_x * n_y, p)
    return random_bipartite(n_x, n_y, int(nnz), rng)


def rmat_bipartite(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
) -> BipartiteCSR:
    """RMAT generator with Graph500 default parameters.

    Generates ``edge_factor * 2**scale`` edge samples in a ``2**scale`` square
    biadjacency matrix by recursive quadrant selection, then deduplicates —
    the same construction the paper uses for its RMAT instance (Section
    IV-B). ``d = 1 - a - b - c``.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError(f"RMAT probabilities must be non-negative: a={a} b={b} c={c} d={d}")
    n = 1 << scale
    m = edge_factor * n
    rng = as_rng(seed)
    rows = np.zeros(m, dtype=INDEX_DTYPE)
    cols = np.zeros(m, dtype=INDEX_DTYPE)
    for level in range(scale):
        r = rng.random(m)
        # Quadrant thresholds: [a, a+b, a+b+c, 1].
        go_down = r >= a + b  # row bit set (quadrants c, d)
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)  # col bit (b, d)
        bit = INDEX_DTYPE(1 << (scale - 1 - level))
        rows += bit * go_down
        cols += bit * go_right
    return _from_edge_arrays(n, n, rows, cols, validate=False)


def grid_bipartite(rows: int, cols: int, *, stencil: int = 5) -> BipartiteCSR:
    """Bipartite graph of a ``rows x cols`` grid operator (scientific class).

    X vertex ``i`` = matrix row ``i``, Y vertex ``j`` = matrix column ``j``;
    edges follow a 5- or 9-point stencil including the diagonal, which gives
    structural full rank (perfect matching exists) — the ``kkt_power`` /
    ``hugetrace`` class stand-in.
    """
    if stencil not in (5, 9):
        raise GraphError(f"stencil must be 5 or 9, got {stencil}")
    n = rows * cols
    idx = np.arange(n, dtype=INDEX_DTYPE)
    r = idx // cols
    c = idx % cols
    offsets = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    if stencil == 9:
        offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
    xs_parts = []
    ys_parts = []
    for dr, dc in offsets:
        rr = r + dr
        cc = c + dc
        ok = (rr >= 0) & (rr < rows) & (cc >= 0) & (cc < cols)
        xs_parts.append(idx[ok])
        ys_parts.append((rr[ok] * cols + cc[ok]).astype(INDEX_DTYPE))
    xs = np.concatenate(xs_parts)
    ys = np.concatenate(ys_parts)
    return _from_edge_arrays(n, n, xs, ys, validate=False)


def road_like(
    n: int,
    *,
    avg_degree: float = 2.5,
    diagonal_fraction: float = 0.92,
    seed: SeedLike = None,
) -> BipartiteCSR:
    """Road-network-like square instance: very low degree, long paths.

    Starts from a near-1D chain structure (like a road skeleton), keeps a
    ``diagonal_fraction`` of the (i, i) entries, and adds random short-range
    off-diagonals up to the target average degree. Long augmenting paths and
    a matching number below 1 emulate ``road_usa``/``road_central``.
    """
    if n < 2:
        raise GraphError("road_like needs n >= 2")
    rng = as_rng(seed)
    idx = np.arange(n, dtype=INDEX_DTYPE)
    keep = rng.random(n) < diagonal_fraction
    xs_parts = [idx[keep]]
    ys_parts = [idx[keep]]
    # Chain edges (i, i+1) emulate road segments.
    xs_parts.append(idx[:-1])
    ys_parts.append(idx[1:])
    extra = max(0, int(avg_degree * n) - int(keep.sum()) - (n - 1))
    if extra:
        ex = rng.integers(0, n, size=extra).astype(INDEX_DTYPE)
        # Short-range connections, as in near-planar road graphs.
        span = rng.integers(-64, 65, size=extra)
        ey = np.clip(ex + span, 0, n - 1).astype(INDEX_DTYPE)
        xs_parts.append(ex)
        ys_parts.append(ey)
    xs = np.concatenate(xs_parts)
    ys = np.concatenate(ys_parts)
    return _from_edge_arrays(n, n, xs, ys, validate=False)


def _power_law_degrees(
    count: int, avg_degree: float, exponent: float, rng: np.random.Generator, d_max: int
) -> np.ndarray:
    """Sample a bounded discrete power-law degree sequence with given mean.

    Degrees are drawn from ``P(d) ∝ d^-exponent`` on ``[1, d_max]`` via
    inverse-CDF sampling, then rescaled (by random add/remove) to hit the
    requested average exactly in expectation.
    """
    u = rng.random(count)
    if abs(exponent - 1.0) < 1e-9:
        deg = np.exp(u * np.log(d_max))
    else:
        g = 1.0 - exponent
        deg = (1.0 + u * (d_max**g - 1.0)) ** (1.0 / g)
    deg = np.floor(deg).astype(np.int64)
    # Scale multiplicatively towards the target mean, keeping min degree 1.
    current = deg.mean()
    if current > 0:
        deg = np.maximum(1, np.round(deg * (avg_degree / current)).astype(np.int64))
    return np.minimum(deg, d_max)


def power_law_bipartite(
    n_x: int,
    n_y: int,
    avg_degree: float = 8.0,
    exponent: float = 2.1,
    *,
    isolated_fraction: float = 0.0,
    column_skew: float = 2.0,
    seed: SeedLike = None,
) -> BipartiteCSR:
    """Power-law bipartite graph (scale-free / web class stand-in).

    Row degrees follow a bounded power law. Each edge's column endpoint has
    rank ``floor(n_y * u**column_skew)`` over a hidden random permutation of
    Y (``u`` uniform), so column degrees are skewed too: ``column_skew=1``
    is uniform, larger values concentrate mass on few columns.
    ``isolated_fraction`` of the X vertices get degree 0, which (together
    with ``n_x != n_y``) drives the matching number down — the
    ``wikipedia`` / ``wb-edu`` regime.
    """
    if column_skew < 1.0:
        raise GraphError(f"column_skew must be >= 1, got {column_skew}")
    rng = as_rng(seed)
    deg = _power_law_degrees(n_x, avg_degree, exponent, rng, d_max=max(4, n_y // 2))
    if isolated_fraction > 0:
        iso = rng.random(n_x) < isolated_fraction
        deg[iso] = 0
    total = int(deg.sum())
    xs = np.repeat(np.arange(n_x, dtype=INDEX_DTYPE), deg)
    ranks = np.minimum(
        (n_y * rng.random(total) ** column_skew).astype(INDEX_DTYPE), n_y - 1
    )
    perm = rng.permutation(n_y).astype(INDEX_DTYPE)
    ys = perm[ranks]
    return _from_edge_arrays(n_x, n_y, xs, ys, validate=False)


def community_bipartite(
    communities: int,
    community_size: int,
    *,
    intra_degree: float = 10.0,
    inter_degree: float = 1.0,
    seed: SeedLike = None,
) -> BipartiteCSR:
    """Clustered bipartite graph (``copapersDBLP`` / collaboration stand-in).

    X and Y are split into ``communities`` aligned blocks; each X vertex
    draws ``intra_degree`` endpoints inside its own block and
    ``inter_degree`` endpoints anywhere.
    """
    n = communities * community_size
    rng = as_rng(seed)
    intra = rng.poisson(intra_degree, size=n)
    inter = rng.poisson(inter_degree, size=n)
    xs_parts = []
    ys_parts = []
    idx = np.arange(n, dtype=INDEX_DTYPE)
    block = idx // community_size
    xs_parts.append(np.repeat(idx, intra))
    base = np.repeat(block * community_size, intra)
    ys_parts.append(base + rng.integers(0, community_size, size=int(intra.sum())))
    xs_parts.append(np.repeat(idx, inter))
    ys_parts.append(rng.integers(0, n, size=int(inter.sum())).astype(INDEX_DTYPE))
    xs = np.concatenate(xs_parts).astype(INDEX_DTYPE)
    ys = np.concatenate(ys_parts).astype(INDEX_DTYPE)
    return _from_edge_arrays(n, n, xs, ys, validate=False)


def planted_matching(
    n: int, extra_edges: int = 0, seed: SeedLike = None, *, shuffle: bool = True
) -> BipartiteCSR:
    """Square graph with a planted perfect matching plus random extra edges.

    The planted matching is a random permutation (or the identity when
    ``shuffle=False``), so the graph always has matching number exactly 1.0.
    Heavily used in tests: any maximum matching algorithm must find ``n``.
    """
    rng = as_rng(seed)
    perm = rng.permutation(n).astype(INDEX_DTYPE) if shuffle else np.arange(n, dtype=INDEX_DTYPE)
    xs_parts = [np.arange(n, dtype=INDEX_DTYPE)]
    ys_parts = [perm]
    if extra_edges:
        xs_parts.append(rng.integers(0, n, size=extra_edges).astype(INDEX_DTYPE))
        ys_parts.append(rng.integers(0, n, size=extra_edges).astype(INDEX_DTYPE))
    return _from_edge_arrays(
        n, n, np.concatenate(xs_parts), np.concatenate(ys_parts), validate=False
    )


def surplus_core_bipartite(
    n_core: int,
    surplus: int,
    *,
    core_degree: float = 4.0,
    surplus_degree: float = 3.0,
    exponent: float = 2.0,
    seed: SeedLike = None,
) -> BipartiteCSR:
    """Web/wiki-like instance: a matchable core plus surplus X vertices.

    The Y side has ``n_core`` vertices; the X side has ``n_core + surplus``.
    The first ``n_core`` X vertices form a *core* with a planted perfect
    matching plus ER extra edges (always perfectly matchable); the
    ``surplus`` X vertices attach power-law-many edges into core Y vertices
    and can never all be matched (the Y side saturates), yet their
    alternating search trees reach deep into the core.

    This is the structure behind the paper's class-3 behaviour: the maximum
    matching leaves many X vertices unmatched, and multi-source algorithms
    without grafting rebuild each of those vertices' giant failed trees in
    every phase (Section I: "MS algorithms cannot discard search trees
    failing to discover augmenting paths and have to reconstruct them many
    times"). Matching fraction = 2*n_core / (2*n_core + surplus).
    """
    if n_core < 1 or surplus < 0:
        raise GraphError(f"invalid sizes: n_core={n_core}, surplus={surplus}")
    rng = as_rng(seed)
    n_x = n_core + surplus
    perm = rng.permutation(n_core).astype(INDEX_DTYPE)
    xs_parts = [np.arange(n_core, dtype=INDEX_DTYPE)]
    ys_parts = [perm]
    extra = max(0, int((core_degree - 1.0) * n_core))
    if extra:
        xs_parts.append(rng.integers(0, n_core, size=extra).astype(INDEX_DTYPE))
        ys_parts.append(rng.integers(0, n_core, size=extra).astype(INDEX_DTYPE))
    if surplus:
        deg = _power_law_degrees(surplus, surplus_degree, exponent, rng, d_max=max(4, n_core // 4))
        xs_parts.append(
            np.repeat(np.arange(n_core, n_x, dtype=INDEX_DTYPE), deg)
        )
        ys_parts.append(rng.integers(0, n_core, size=int(deg.sum())).astype(INDEX_DTYPE))
    return _from_edge_arrays(
        n_x, n_core, np.concatenate(xs_parts), np.concatenate(ys_parts), validate=False
    )


def chain_graph(k: int) -> BipartiteCSR:
    """Path ``x_0 - y_0 - x_1 - y_1 - ... - x_{k-1} - y_{k-1}``.

    The canonical long-augmenting-path stress case: a greedy matching that
    picks alternating edges forces augmenting paths of length Θ(k).
    """
    if k < 1:
        raise GraphError("chain_graph needs k >= 1")
    xs = np.concatenate([np.arange(k), np.arange(1, k)]).astype(INDEX_DTYPE)
    ys = np.concatenate([np.arange(k), np.arange(k - 1)]).astype(INDEX_DTYPE)
    return _from_edge_arrays(k, k, xs, ys, validate=False)


def complete_bipartite(n_x: int, n_y: int) -> BipartiteCSR:
    """Complete bipartite graph ``K_{n_x, n_y}``."""
    xs = np.repeat(np.arange(n_x, dtype=INDEX_DTYPE), n_y)
    ys = np.tile(np.arange(n_y, dtype=INDEX_DTYPE), n_x)
    return _from_edge_arrays(n_x, n_y, xs, ys, validate=False)


def crown_graph(n: int) -> BipartiteCSR:
    """``K_{n,n}`` minus the identity matching.

    Has a perfect matching for ``n >= 2`` but no edge ``(i, i)`` — a classic
    adversarial case for greedy initialisers.
    """
    if n < 2:
        raise GraphError("crown_graph needs n >= 2")
    xs = np.repeat(np.arange(n, dtype=INDEX_DTYPE), n - 1)
    ys = np.concatenate(
        [np.delete(np.arange(n, dtype=INDEX_DTYPE), i) for i in range(n)]
    )
    return _from_edge_arrays(n, n, xs, ys, validate=False)
