"""Structural graph reports used by Table II and the bench harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import BipartiteCSR


@dataclass(frozen=True)
class GraphProperties:
    """Summary statistics for one bipartite graph (Table II columns)."""

    n_x: int
    n_y: int
    nnz: int
    num_directed_edges: int
    avg_degree_x: float
    avg_degree_y: float
    max_degree_x: int
    max_degree_y: int
    isolated_x: int
    isolated_y: int
    degree_skew_x: float = field(default=0.0)
    """max degree / mean degree on the X side — a cheap scale-free indicator."""

    @property
    def num_vertices(self) -> int:
        return self.n_x + self.n_y


def analyze(graph: BipartiteCSR) -> GraphProperties:
    """Compute :class:`GraphProperties` for ``graph``."""
    deg_x = graph.degree_x()
    deg_y = graph.degree_y()
    avg_x = float(deg_x.mean()) if graph.n_x else 0.0
    avg_y = float(deg_y.mean()) if graph.n_y else 0.0
    return GraphProperties(
        n_x=graph.n_x,
        n_y=graph.n_y,
        nnz=graph.nnz,
        num_directed_edges=graph.num_directed_edges,
        avg_degree_x=avg_x,
        avg_degree_y=avg_y,
        max_degree_x=int(deg_x.max()) if graph.n_x else 0,
        max_degree_y=int(deg_y.max()) if graph.n_y else 0,
        isolated_x=int(np.count_nonzero(deg_x == 0)),
        isolated_y=int(np.count_nonzero(deg_y == 0)),
        degree_skew_x=(float(deg_x.max()) / avg_x) if avg_x > 0 else 0.0,
    )
