"""Compressed-sparse-row bipartite graph.

A :class:`BipartiteCSR` stores an undirected bipartite graph
``G = (X ∪ Y, E)`` with ``|X| = n_x`` and ``|Y| = n_y``. X vertices are
numbered ``0 .. n_x-1`` and Y vertices ``0 .. n_y-1`` in their own index
spaces (algorithms never mix the two spaces, which keeps every hot array a
flat numpy vector).

Both adjacency directions are stored:

* ``x_ptr`` / ``x_adj`` — for each x, the sorted Y neighbours (top-down BFS),
* ``y_ptr`` / ``y_adj`` — for each y, the sorted X neighbours (bottom-up BFS
  and tree grafting).

Following the paper (Section IV-B) the edge count ``m`` reported in
experiment tables is the number of *directed* edges, ``2 * nnz``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphError

INDEX_DTYPE = np.int64
"""Dtype used for all adjacency and pointer arrays."""


class BipartiteCSR:
    """Immutable CSR bipartite graph.

    Instances are normally built with :mod:`repro.graph.builder` or a
    generator from :mod:`repro.graph.generators`; the constructor takes
    ready-made CSR arrays and (by default) validates their consistency.
    """

    __slots__ = (
        "n_x", "n_y", "x_ptr", "x_adj", "y_ptr", "y_adj", "_adj_lists",
        "_deg_x", "_deg_y",
    )

    def __init__(
        self,
        n_x: int,
        n_y: int,
        x_ptr: np.ndarray,
        x_adj: np.ndarray,
        y_ptr: np.ndarray,
        y_adj: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.n_x = int(n_x)
        self.n_y = int(n_y)
        self.x_ptr = np.ascontiguousarray(x_ptr, dtype=INDEX_DTYPE)
        self.x_adj = np.ascontiguousarray(x_adj, dtype=INDEX_DTYPE)
        self.y_ptr = np.ascontiguousarray(y_ptr, dtype=INDEX_DTYPE)
        self.y_adj = np.ascontiguousarray(y_adj, dtype=INDEX_DTYPE)
        self._adj_lists = None  # lazy cache used by repro.matching._common
        self._deg_x = None  # lazy degree-vector caches (deg_x/deg_y props)
        self._deg_y = None
        # Freeze the arrays: algorithms share graphs across runs and threads,
        # so accidental mutation would be a hard-to-find bug.
        for arr in (self.x_ptr, self.x_adj, self.y_ptr, self.y_adj):
            arr.setflags(write=False)
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def nnz(self) -> int:
        """Number of undirected edges (nonzeros of the biadjacency matrix)."""
        return int(self.x_adj.shape[0])

    @property
    def num_vertices(self) -> int:
        """``n = n_x + n_y``."""
        return self.n_x + self.n_y

    @property
    def num_directed_edges(self) -> int:
        """``m = 2 * nnz`` — the paper's edge count convention."""
        return 2 * self.nnz

    @property
    def deg_x(self) -> np.ndarray:
        """Cached, read-only X degree vector.

        Every engine run (and the cache's precompute step) needs the full
        degree vectors for the direction cost model; computing ``np.diff``
        once per graph instead of once per run keeps that off the hot path.
        """
        if self._deg_x is None:
            deg = np.diff(self.x_ptr)
            deg.setflags(write=False)
            self._deg_x = deg
        return self._deg_x

    @property
    def deg_y(self) -> np.ndarray:
        """Cached, read-only Y degree vector (see :attr:`deg_x`)."""
        if self._deg_y is None:
            deg = np.diff(self.y_ptr)
            deg.setflags(write=False)
            self._deg_y = deg
        return self._deg_y

    def degree_x(self, x: int | None = None) -> np.ndarray | int:
        """Degree of X vertex ``x``, or the full degree vector if ``None``."""
        if x is None:
            return self.deg_x
        return int(self.x_ptr[x + 1] - self.x_ptr[x])

    def degree_y(self, y: int | None = None) -> np.ndarray | int:
        """Degree of Y vertex ``y``, or the full degree vector if ``None``."""
        if y is None:
            return self.deg_y
        return int(self.y_ptr[y + 1] - self.y_ptr[y])

    def neighbors_x(self, x: int) -> np.ndarray:
        """Read-only view of the Y neighbours of X vertex ``x``."""
        return self.x_adj[self.x_ptr[x] : self.x_ptr[x + 1]]

    def neighbors_y(self, y: int) -> np.ndarray:
        """Read-only view of the X neighbours of Y vertex ``y``."""
        return self.y_adj[self.y_ptr[y] : self.y_ptr[y + 1]]

    def has_edge(self, x: int, y: int) -> bool:
        """Membership test via binary search on the sorted adjacency row."""
        row = self.neighbors_x(x)
        pos = int(np.searchsorted(row, y))
        return pos < row.shape[0] and int(row[pos]) == y

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges as ``(x, y)`` pairs in CSR order."""
        for x in range(self.n_x):
            for y in self.neighbors_x(x):
                yield x, int(y)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the edge list as parallel ``(xs, ys)`` arrays (copies)."""
        xs = np.repeat(np.arange(self.n_x, dtype=INDEX_DTYPE), np.diff(self.x_ptr))
        return xs, self.x_adj.copy()

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if self.n_x < 0 or self.n_y < 0:
            raise GraphError(f"negative vertex counts: n_x={self.n_x}, n_y={self.n_y}")
        if self.x_ptr.shape != (self.n_x + 1,):
            raise GraphError(f"x_ptr has shape {self.x_ptr.shape}, expected ({self.n_x + 1},)")
        if self.y_ptr.shape != (self.n_y + 1,):
            raise GraphError(f"y_ptr has shape {self.y_ptr.shape}, expected ({self.n_y + 1},)")
        for name, ptr, adj in (("x", self.x_ptr, self.x_adj), ("y", self.y_ptr, self.y_adj)):
            if ptr[0] != 0 or ptr[-1] != adj.shape[0]:
                raise GraphError(f"{name}_ptr endpoints inconsistent with {name}_adj length")
            if np.any(np.diff(ptr) < 0):
                raise GraphError(f"{name}_ptr is not non-decreasing")
        if self.x_adj.shape[0] != self.y_adj.shape[0]:
            raise GraphError(
                "x_adj and y_adj disagree on edge count: "
                f"{self.x_adj.shape[0]} != {self.y_adj.shape[0]}"
            )
        if self.x_adj.size and (self.x_adj.min() < 0 or self.x_adj.max() >= self.n_y):
            raise GraphError("x_adj contains out-of-range Y indices")
        if self.y_adj.size and (self.y_adj.min() < 0 or self.y_adj.max() >= self.n_x):
            raise GraphError("y_adj contains out-of-range X indices")
        for x in range(self.n_x):
            row = self.neighbors_x(x)
            if row.shape[0] > 1 and np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency row of x={x} is not strictly increasing")
        for y in range(self.n_y):
            row = self.neighbors_y(y)
            if row.shape[0] > 1 and np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency row of y={y} is not strictly increasing")
        # The two directions must describe the same edge set.
        xs, ys = self.edge_arrays()
        ys2 = np.repeat(np.arange(self.n_y, dtype=INDEX_DTYPE), np.diff(self.y_ptr))
        xs2 = self.y_adj
        order1 = np.lexsort((ys, xs))
        order2 = np.lexsort((ys2, xs2))
        if not (
            np.array_equal(xs[order1], xs2[order2]) and np.array_equal(ys[order1], ys2[order2])
        ):
            raise GraphError("x-side and y-side adjacency describe different edge sets")

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def transpose(self) -> "BipartiteCSR":
        """Swap the roles of X and Y (rows and columns)."""
        return BipartiteCSR(
            self.n_y, self.n_x, self.y_ptr, self.y_adj, self.x_ptr, self.x_adj, validate=False
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteCSR):
            return NotImplemented
        return (
            self.n_x == other.n_x
            and self.n_y == other.n_y
            and np.array_equal(self.x_ptr, other.x_ptr)
            and np.array_equal(self.x_adj, other.x_adj)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"BipartiteCSR(n_x={self.n_x}, n_y={self.n_y}, nnz={self.nnz}, "
            f"m={self.num_directed_edges})"
        )
