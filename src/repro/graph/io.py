"""Matrix Market I/O for bipartite graphs.

The paper's real-world instances come from the University of Florida sparse
matrix collection, distributed in Matrix Market coordinate format. This
module implements the subset of the format needed to ingest those files
offline: ``matrix coordinate`` with ``pattern | real | integer`` fields and
``general | symmetric`` symmetry, plus a writer for round-tripping.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import _from_edge_arrays
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = {"pattern", "real", "integer", "complex"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source: Union[str, Path, TextIO]) -> BipartiteCSR:
    """Read a Matrix Market file as a bipartite graph (rows = X, cols = Y).

    Values are ignored — only the sparsity pattern matters for matching.
    ``symmetric`` (and ``skew-symmetric``) storage is expanded to both
    triangles, as the collection stores only the lower triangle.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_matrix_market(fh)
    header = source.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise GraphFormatError(f"not a MatrixMarket file (header: {header[:40]!r})")
    parts = header.strip().split()
    if len(parts) < 5:
        raise GraphFormatError(f"malformed MatrixMarket header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[0], parts[1], parts[2], parts[3].lower(), parts[4].lower()
    if obj.lower() != "matrix" or fmt.lower() != "coordinate":
        raise GraphFormatError(f"only 'matrix coordinate' is supported, got '{obj} {fmt}'")
    if field not in _SUPPORTED_FIELDS:
        raise GraphFormatError(f"unsupported field type {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise GraphFormatError(f"unsupported symmetry {symmetry!r}")

    size_line = None
    for line in source:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if size_line is None:
        raise GraphFormatError("missing size line")
    try:
        n_rows, n_cols, nnz = (int(tok) for tok in size_line.split()[:3])
    except ValueError as exc:
        raise GraphFormatError(f"malformed size line: {size_line!r}") from exc
    if n_rows < 0 or n_cols < 0 or nnz < 0:
        raise GraphFormatError(f"negative sizes in size line: {size_line!r}")
    if nnz > n_rows * n_cols:
        raise GraphFormatError(
            f"declared {nnz} entries exceed the {n_rows}x{n_cols} matrix capacity"
        )

    rows = np.empty(nnz, dtype=INDEX_DTYPE)
    cols = np.empty(nnz, dtype=INDEX_DTYPE)
    count = 0
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        toks = stripped.split()
        if len(toks) < 2:
            raise GraphFormatError(f"malformed entry line: {stripped!r}")
        if count >= nnz:
            raise GraphFormatError(f"more than the declared {nnz} entries")
        try:
            rows[count] = int(toks[0]) - 1  # 1-based on disk
            cols[count] = int(toks[1]) - 1
        except (ValueError, OverflowError) as exc:
            raise GraphFormatError(f"malformed entry line: {stripped!r}") from exc
        count += 1
    if count != nnz:
        raise GraphFormatError(f"declared {nnz} entries but found {count}")
    if nnz and (
        rows.min() < 0 or rows.max() >= n_rows or cols.min() < 0 or cols.max() >= n_cols
    ):
        raise GraphFormatError("entry indices out of declared range")

    if symmetry in ("symmetric", "skew-symmetric"):
        if n_rows != n_cols:
            raise GraphFormatError("symmetric matrix must be square")
        off = rows != cols
        rows, cols = np.concatenate([rows, cols[off]]), np.concatenate([cols, rows[off]])
    return _from_edge_arrays(n_rows, n_cols, rows, cols, validate=False)


_WRITE_CHUNK_EDGES = 1 << 16
"""Edges per write in :func:`write_matrix_market`; bounds peak text buffering."""


def write_matrix_market(
    graph: BipartiteCSR,
    target: Union[str, Path, TextIO],
    *,
    chunk_edges: int = _WRITE_CHUNK_EDGES,
) -> None:
    """Write the graph's biadjacency pattern in MatrixMarket coordinate form.

    The edge body is streamed ``chunk_edges`` entries at a time, so writing
    a multi-GB file never buffers a second text copy of the whole edge list
    in memory (only one chunk's worth).
    """
    if chunk_edges <= 0:
        raise GraphFormatError(f"chunk_edges must be positive, got {chunk_edges}")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_matrix_market(graph, fh, chunk_edges=chunk_edges)
        return
    target.write("%%MatrixMarket matrix coordinate pattern general\n")
    target.write("% written by repro.graph.io\n")
    target.write(f"{graph.n_x} {graph.n_y} {graph.nnz}\n")
    xs, ys = graph.edge_arrays()
    for start in range(0, len(xs), chunk_edges):
        chunk_x = xs[start:start + chunk_edges]
        chunk_y = ys[start:start + chunk_edges]
        target.write(
            "".join(f"{x + 1} {y + 1}\n" for x, y in zip(chunk_x, chunk_y))
        )
