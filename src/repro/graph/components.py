"""Connected components of bipartite graphs, and per-component matching.

Maximum matching decomposes over connected components; running the matching
per component bounds each search inside its component (smaller working
sets, embarrassing outer parallelism) and is the natural preprocessing for
graphs with many islands — common in the paper's web/wiki class.

:func:`connected_components` labels both sides with a union-find pass;
:func:`match_by_components` runs any registered algorithm per component on
extracted subgraphs and stitches the mate arrays back together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.graph.builder import _from_edge_arrays
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.instrument.counters import Counters
from repro.matching.base import MatchResult, Matching


@dataclass(frozen=True)
class ComponentLabels:
    """Component ids per vertex side (ids are dense, 0-based)."""

    num_components: int
    label_x: np.ndarray
    label_y: np.ndarray

    def component_sizes(self) -> np.ndarray:
        """Vertices per component (both sides)."""
        return (
            np.bincount(self.label_x, minlength=self.num_components)
            + np.bincount(self.label_y, minlength=self.num_components)
        )


class _UnionFind:
    """Array union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, v: int) -> int:
        parent = self.parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = int(parent[v])
        return v

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def connected_components(graph: BipartiteCSR) -> ComponentLabels:
    """Label connected components. Isolated vertices get their own id."""
    n = graph.n_x + graph.n_y
    uf = _UnionFind(n)
    xs, ys = graph.edge_arrays()
    for x, y in zip(xs.tolist(), ys.tolist()):
        uf.union(x, graph.n_x + y)
    roots = np.array([uf.find(v) for v in range(n)], dtype=np.int64)
    _, dense = np.unique(roots, return_inverse=True)
    return ComponentLabels(
        num_components=int(dense.max()) + 1 if n else 0,
        label_x=dense[: graph.n_x].copy(),
        label_y=dense[graph.n_x :].copy(),
    )


def extract_component(
    graph: BipartiteCSR, labels: ComponentLabels, component: int
) -> tuple[BipartiteCSR, np.ndarray, np.ndarray]:
    """Subgraph of one component plus its (old-id) X and Y vertex arrays."""
    x_ids = np.flatnonzero(labels.label_x == component)
    y_ids = np.flatnonzero(labels.label_y == component)
    x_map = np.full(graph.n_x, -1, dtype=np.int64)
    x_map[x_ids] = np.arange(x_ids.size)
    y_map = np.full(graph.n_y, -1, dtype=np.int64)
    y_map[y_ids] = np.arange(y_ids.size)
    xs, ys = graph.edge_arrays()
    keep = labels.label_x[xs] == component
    sub = _from_edge_arrays(
        int(x_ids.size),
        int(y_ids.size),
        x_map[xs[keep]].astype(INDEX_DTYPE),
        y_map[ys[keep]].astype(INDEX_DTYPE),
        validate=False,
    )
    return sub, x_ids, y_ids


def match_by_components(
    graph: BipartiteCSR,
    algorithm: Optional[Callable[[BipartiteCSR], MatchResult]] = None,
) -> MatchResult:
    """Maximum matching computed component by component.

    ``algorithm`` maps a subgraph to a :class:`MatchResult`; defaults to
    MS-BFS-Graft. Counters are merged across components.
    """
    if algorithm is None:
        from repro.core.driver import ms_bfs_graft

        algorithm = lambda g: ms_bfs_graft(g, emit_trace=False)  # noqa: E731

    labels = connected_components(graph)
    matching = Matching.empty(graph.n_x, graph.n_y)
    merged: Optional[MatchResult] = None
    for component in range(labels.num_components):
        sub, x_ids, y_ids = extract_component(graph, labels, component)
        if sub.nnz == 0:
            continue
        result = algorithm(sub)
        local = result.matching
        matched_local = np.flatnonzero(local.mate_x != -1)
        matching.mate_x[x_ids[matched_local]] = y_ids[local.mate_x[matched_local]]
        matched_local_y = np.flatnonzero(local.mate_y != -1)
        matching.mate_y[y_ids[matched_local_y]] = x_ids[local.mate_y[matched_local_y]]
        if merged is None:
            merged = result
        else:
            merged.counters.merge(result.counters)
    return MatchResult(
        matching=matching,
        algorithm=(merged.algorithm if merged else "empty") + "+components",
        counters=merged.counters if merged is not None else Counters(),
    )
