"""Bipartite graph substrate: CSR storage, builders, generators, and I/O.

The whole package works on :class:`BipartiteCSR`, a compressed-sparse-row
representation of an undirected bipartite graph that stores *both* adjacency
directions (X->Y and Y->X), mirroring the paper's Section IV-B convention of
keeping each nonzero as two directed edges so that top-down and bottom-up
searches are both cheap.
"""

from repro.graph.csr import BipartiteCSR
from repro.graph.builder import (
    from_edges,
    from_biadjacency_lists,
    from_scipy_sparse,
    from_dense,
    from_networkx,
    to_scipy_sparse,
    to_networkx,
)
from repro.graph.generators import (
    random_bipartite,
    random_bipartite_gnp,
    rmat_bipartite,
    grid_bipartite,
    road_like,
    power_law_bipartite,
    community_bipartite,
    planted_matching,
    surplus_core_bipartite,
    chain_graph,
    complete_bipartite,
    crown_graph,
)
from repro.graph.io import read_matrix_market, write_matrix_market
from repro.graph.readers import LabelledGraph, read_snap_edgelist, read_dimacs
from repro.graph.serialize import load_graph, save_graph
from repro.graph.components import (
    ComponentLabels,
    connected_components,
    extract_component,
    match_by_components,
)
from repro.graph.permute import permute, random_permutation
from repro.graph.properties import GraphProperties, analyze

__all__ = [
    "BipartiteCSR",
    "from_edges",
    "from_biadjacency_lists",
    "from_scipy_sparse",
    "from_dense",
    "from_networkx",
    "to_scipy_sparse",
    "to_networkx",
    "random_bipartite",
    "random_bipartite_gnp",
    "rmat_bipartite",
    "grid_bipartite",
    "road_like",
    "power_law_bipartite",
    "community_bipartite",
    "planted_matching",
    "surplus_core_bipartite",
    "chain_graph",
    "complete_bipartite",
    "crown_graph",
    "read_matrix_market",
    "write_matrix_market",
    "LabelledGraph",
    "read_snap_edgelist",
    "read_dimacs",
    "load_graph",
    "save_graph",
    "ComponentLabels",
    "connected_components",
    "extract_component",
    "match_by_components",
    "permute",
    "random_permutation",
    "GraphProperties",
    "analyze",
]
