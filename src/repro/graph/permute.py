"""Vertex relabelling.

Parallel matching runtimes depend on vertex processing order; the paper's
Section V-B measures run-to-run variability (psi). Our simulated machine is
deterministic for a fixed graph, so the sensitivity experiment perturbs the
vertex numbering between runs with :func:`permute` — the same effect thread
scheduling has on real hardware (different discovery orders), without
changing the graph.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import _from_edge_arrays
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.util.rng import SeedLike, as_rng


def random_permutation(n: int, seed: SeedLike = None) -> np.ndarray:
    """A random permutation of ``0..n-1`` as an INDEX_DTYPE array."""
    return as_rng(seed).permutation(n).astype(INDEX_DTYPE)


def permute(
    graph: BipartiteCSR,
    x_perm: np.ndarray | None = None,
    y_perm: np.ndarray | None = None,
    seed: SeedLike = None,
) -> Tuple[BipartiteCSR, np.ndarray, np.ndarray]:
    """Relabel vertices: new id of old x is ``x_perm[x]`` (same for y).

    Missing permutations are drawn at random from ``seed``. Returns
    ``(new_graph, x_perm, y_perm)`` so matchings can be mapped back via
    ``mate_new[x_perm[x]] == y_perm[mate_old[x]]``.
    """
    rng = as_rng(seed)
    if x_perm is None:
        x_perm = rng.permutation(graph.n_x).astype(INDEX_DTYPE)
    else:
        x_perm = _check_perm(np.asarray(x_perm), graph.n_x, "x_perm")
    if y_perm is None:
        y_perm = rng.permutation(graph.n_y).astype(INDEX_DTYPE)
    else:
        y_perm = _check_perm(np.asarray(y_perm), graph.n_y, "y_perm")
    xs, ys = graph.edge_arrays()
    new = _from_edge_arrays(graph.n_x, graph.n_y, x_perm[xs], y_perm[ys], validate=False)
    return new, x_perm, y_perm


def _check_perm(perm: np.ndarray, n: int, name: str) -> np.ndarray:
    """Validate a caller-supplied permutation and return it as INDEX_DTYPE.

    Validation happens *before* any dtype conversion: a float array (which
    ``astype(int64)`` would silently truncate) or any other non-integer
    dtype is rejected outright instead of being cast into a coincidentally
    valid — but wrong — permutation.
    """
    if perm.dtype.kind not in ("i", "u"):
        raise GraphError(
            f"{name} has dtype {perm.dtype}, expected an integer dtype "
            f"(got a non-integer array; refusing to cast silently)"
        )
    if perm.shape != (n,):
        raise GraphError(f"{name} has shape {perm.shape}, expected ({n},)")
    if perm.size and (perm.min() < 0 or perm.max() >= n):
        raise GraphError(
            f"{name} has entries outside 0..{n - 1} "
            f"(min {perm.min()}, max {perm.max()})"
        )
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise GraphError(f"{name} is not a permutation of 0..{n - 1}")
    return perm.astype(INDEX_DTYPE, copy=False)
