"""Locality-aware vertex reordering as a (cacheable) preparation stage.

The level kernels stream CSR adjacency in whatever vertex order the graph
was built with, and the engines' deterministic claim resolution ("first
claimant in frontier order wins", :mod:`repro.core.kernels`) ties the whole
phase trajectory to that numbering: the Y vertex claimed by a frontier, the
tree a recycled row grafts onto, and — decisively — the quality of the
first phase's greedy matching are all functions of vertex order. Reordering
is therefore a legitimate preparation stage: permute the graph once (cost
amortised by the content-addressed layout cache, :mod:`repro.cache`), run
any engine on the permuted layout, and map the matching back through the
inverse permutation. Results are bit-exact in cardinality — the suites in
``tests/matching`` certify every strategy differentially.

Three strategies, one interface (:func:`plan_reorder`):

``degree``
    Descending-degree sort per side. Hot (high-degree) adjacency rows pack
    to the front of each CSR; the classic cache-locality ordering.

``bfs``
    Cuthill–McKee-style alternating BFS seeded from the highest-degree X
    vertex, neighbours enqueued in ascending-degree order, then reversed
    (RCM). Clusters each BFS level contiguously, which narrows the span of
    indices a traversal level touches.

``hubsplit``
    Partitions hub rows from tail rows the way the 2D engines treat hubs,
    so hub adjacency packs contiguously (X hubs at the back, Y hubs at the
    front). Tail X vertices are placed in a Karp-Sipser-style *elimination
    order* — repeatedly place the vertex with the fewest still-unclaimed
    neighbours — which makes the engines' first-claim map nearly injective
    in phase 1: far more distinct Y claims land in the first greedy sweep,
    so the repair-phase cascade (and its grafting churn) collapses. This is
    the measured winner on every benchmark family (``docs/performance.md``).

Planning cost is O(m log n) and paid once per ``(graph, strategy)`` — the
cache stores the permuted CSR plus both permutations as a derived layout
entry (``repro.cache.store.GraphCache.prepare_layout``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import INDEX_DTYPE, BipartiteCSR
from repro.graph.permute import permute
from repro.matching.base import UNMATCHED, Matching

REORDER_STRATEGIES = ("degree", "bfs", "hubsplit")
"""The concrete reordering strategies behind :func:`plan_reorder`."""

REORDER_CHOICES = ("none",) + REORDER_STRATEGIES + ("auto",)
"""Accepted values of every ``--reorder`` flag (CLI + driver)."""

REORDER_VERSION = 1
"""Bumped whenever a strategy's output changes; part of the layout cache key."""

HUB_DEGREE_FACTOR = 4.0
"""A vertex is a hub when its degree is ``>= max(factor * mean degree, 2)``
— the same threshold family the 2D hub handling uses."""

_TIEBREAK_SEED = 0
"""Fixed seed of the within-degree-class shuffle: plans stay deterministic
per (graph, strategy) while equal-degree runs don't inherit generator
order."""


@dataclass(frozen=True)
class ReorderPlan:
    """A validated ``(row_perm, col_perm)`` pair for one strategy.

    ``x_perm[x]`` is the new id of old X vertex ``x`` (same for Y) — the
    exact convention of :func:`repro.graph.permute.permute`, so a matching
    on the permuted graph satisfies
    ``mate_new[x_perm[x]] == y_perm[mate_old[x]]``.
    """

    strategy: str
    x_perm: np.ndarray
    y_perm: np.ndarray
    _inv: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.strategy not in REORDER_STRATEGIES:
            raise GraphError(
                f"unknown reorder strategy {self.strategy!r}; "
                f"expected one of {REORDER_STRATEGIES}"
            )

    @property
    def n_x(self) -> int:
        return int(self.x_perm.shape[0])

    @property
    def n_y(self) -> int:
        return int(self.y_perm.shape[0])

    def _inverse(self, side: str) -> np.ndarray:
        inv = self._inv.get(side)
        if inv is None:
            perm = self.x_perm if side == "x" else self.y_perm
            inv = np.empty(perm.shape[0], dtype=INDEX_DTYPE)
            inv[perm] = np.arange(perm.shape[0], dtype=INDEX_DTYPE)
            self._inv[side] = inv
        return inv

    def permute_matching(self, matching: Matching) -> Matching:
        """Map a matching on the *original* ids onto the permuted ids."""
        mate_x = np.full(self.n_x, UNMATCHED, dtype=INDEX_DTYPE)
        mate_y = np.full(self.n_y, UNMATCHED, dtype=INDEX_DTYPE)
        matched = np.flatnonzero(matching.mate_x != UNMATCHED)
        if matched.size:
            new_x = self.x_perm[matched]
            new_y = self.y_perm[matching.mate_x[matched]]
            mate_x[new_x] = new_y
            mate_y[new_y] = new_x
        return Matching(self.n_x, self.n_y, mate_x, mate_y)

    def unpermute_matching(self, matching: Matching) -> Matching:
        """Map a matching on the *permuted* ids back to the original ids."""
        inv_x = self._inverse("x")
        inv_y = self._inverse("y")
        mate_x = np.full(self.n_x, UNMATCHED, dtype=INDEX_DTYPE)
        mate_y = np.full(self.n_y, UNMATCHED, dtype=INDEX_DTYPE)
        matched = np.flatnonzero(matching.mate_x != UNMATCHED)
        if matched.size:
            old_x = inv_x[matched]
            old_y = inv_y[matching.mate_x[matched]]
            mate_x[old_x] = old_y
            mate_y[old_y] = old_x
        return Matching(self.n_x, self.n_y, mate_x, mate_y)


def plan_reorder(graph: BipartiteCSR, strategy: str) -> ReorderPlan:
    """Compute the ``(x_perm, y_perm)`` pair of one strategy.

    Deterministic per ``(graph, strategy)``; validated by
    :func:`repro.graph.permute.permute` when applied. ``"none"`` and
    ``"auto"`` are dispatch-level concepts and are rejected here — resolve
    them first (:func:`repro.core.driver.choose_engine`).
    """
    if strategy == "degree":
        x_order = _sort_order(-graph.deg_x)
        y_order = _sort_order(-graph.deg_y)
    elif strategy == "bfs":
        x_order, y_order = _rcm_orders(graph)
    elif strategy == "hubsplit":
        x_order = _hubsplit_x_order(graph)
        y_order = _sort_order(-graph.deg_y, shuffled=True, n=graph.n_y)
    else:
        raise GraphError(
            f"unknown reorder strategy {strategy!r}; "
            f"expected one of {REORDER_STRATEGIES}"
        )
    return ReorderPlan(
        strategy=strategy,
        x_perm=_perm_from_order(x_order),
        y_perm=_perm_from_order(y_order),
    )


def apply_plan(graph: BipartiteCSR, plan: ReorderPlan) -> BipartiteCSR:
    """Relabel ``graph`` through ``plan`` (permutations re-validated)."""
    new_graph, _, _ = permute(graph, plan.x_perm, plan.y_perm)
    return new_graph


def reorder_graph(graph: BipartiteCSR, strategy: str) -> tuple[BipartiteCSR, ReorderPlan]:
    """Plan + apply in one call; returns ``(permuted_graph, plan)``."""
    plan = plan_reorder(graph, strategy)
    return apply_plan(graph, plan), plan


def hub_mask(deg: np.ndarray) -> np.ndarray:
    """Boolean hub mask of one side (degree threshold, see module doc)."""
    if deg.size == 0:
        return np.zeros(0, dtype=bool)
    return deg >= max(HUB_DEGREE_FACTOR * float(deg.mean()), 2.0)


# --------------------------------------------------------------------- #
# strategy internals
# --------------------------------------------------------------------- #


def _perm_from_order(order: np.ndarray) -> np.ndarray:
    """Placement order -> permutation (``perm[order[i]] = i``)."""
    perm = np.empty(order.shape[0], dtype=INDEX_DTYPE)
    perm[order] = np.arange(order.shape[0], dtype=INDEX_DTYPE)
    return perm


def _sort_order(key: np.ndarray, shuffled: bool = False, n: int | None = None) -> np.ndarray:
    """Stable ascending sort of ``key``, optionally with a seeded shuffle
    tie-break so equal-key vertices don't inherit generator order."""
    if not shuffled:
        return np.argsort(key, kind="stable").astype(INDEX_DTYPE)
    rng = np.random.default_rng(_TIEBREAK_SEED)
    shuffle = rng.permutation(n if n is not None else key.shape[0])
    return shuffle[np.argsort(key[shuffle], kind="stable")].astype(INDEX_DTYPE)


def _rcm_orders(graph: BipartiteCSR) -> tuple[np.ndarray, np.ndarray]:
    """Cuthill–McKee alternating BFS, reversed (RCM).

    Components are seeded from the highest-degree unseen X vertex;
    neighbours enter the queue in ascending-degree order (the CM rule).
    """
    deg_x, deg_y = graph.deg_x, graph.deg_y
    seen_x = np.zeros(graph.n_x, dtype=bool)
    seen_y = np.zeros(graph.n_y, dtype=bool)
    order_x: list[np.ndarray] = []
    order_y: list[np.ndarray] = []
    for seed in np.argsort(-deg_x, kind="stable"):
        if seen_x[seed]:
            continue
        frontier = np.array([seed], dtype=INDEX_DTYPE)
        seen_x[seed] = True
        on_x = True
        while frontier.size:
            if on_x:
                order_x.append(frontier)
                ptr, adj, seen, deg = graph.x_ptr, graph.x_adj, seen_y, deg_y
            else:
                order_y.append(frontier)
                ptr, adj, seen, deg = graph.y_ptr, graph.y_adj, seen_x, deg_x
            starts, stops = ptr[frontier], ptr[frontier + 1]
            nbrs = np.concatenate(
                [adj[a:b] for a, b in zip(starts, stops)]
            ) if frontier.size else np.empty(0, dtype=INDEX_DTYPE)
            nbrs = np.unique(nbrs[~seen[nbrs]]) if nbrs.size else nbrs
            nbrs = nbrs[np.argsort(deg[nbrs], kind="stable")]
            seen[nbrs] = True
            frontier = nbrs.astype(INDEX_DTYPE, copy=False)
            on_x = not on_x
    x_order = _concat_with_rest(order_x, seen_x)
    y_order = _concat_with_rest(order_y, seen_y)
    # RCM: reverse the CM visit order.
    return x_order[::-1].copy(), y_order[::-1].copy()


def _concat_with_rest(parts: list[np.ndarray], seen: np.ndarray) -> np.ndarray:
    rest = np.flatnonzero(~seen).astype(INDEX_DTYPE)
    if not parts:
        return rest
    return np.concatenate(parts + [rest]).astype(INDEX_DTYPE, copy=False)


def _hubsplit_x_order(graph: BipartiteCSR) -> np.ndarray:
    """Tail X vertices in elimination order, hub rows packed at the back."""
    order = _elimination_order(graph)
    hubs = hub_mask(graph.deg_x)
    if not hubs.any():
        return order
    is_hub = hubs[order]
    # Stable partition: tail keeps its elimination order, hubs keep their
    # relative order but pack contiguously at the back of the row range.
    return np.concatenate([order[~is_hub], order[is_hub]])


def _elimination_order(graph: BipartiteCSR) -> np.ndarray:
    """Karp-Sipser-style placement order of the X side.

    ``u[x]`` counts the neighbours of ``x`` that no earlier-placed vertex
    has already claimed. Repeatedly placing the x with the smallest
    ``u[x] >= 1`` (lazy min-heap) means most placed vertices receive
    exactly one first-phase claim — the engines' deterministic
    "first claimant wins" rule then turns phase 1 into a near-maximal
    greedy matching instead of a collision pile-up. Vertices whose whole
    neighbourhood is claimed before placement (``u == 0``) cannot attract
    a claim anywhere, so they go to the back, ascending by degree.
    """
    import heapq

    n_x = graph.n_x
    if n_x == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    x_ptr, x_adj = graph.x_ptr, graph.x_adj
    y_ptr, y_adj = graph.y_ptr, graph.y_adj
    u = np.diff(x_ptr).astype(np.int64)
    claimed = np.zeros(graph.n_y, dtype=bool)
    placed = np.zeros(n_x, dtype=bool)
    deg_x = graph.deg_x
    rng = np.random.default_rng(_TIEBREAK_SEED)
    jitter = rng.permutation(n_x)
    heap = [(int(u[x]), int(jitter[x]), x) for x in range(n_x) if u[x] > 0]
    heapq.heapify(heap)
    order = np.empty(n_x, dtype=INDEX_DTYPE)
    pos = 0
    while heap:
        k, j, x = heapq.heappop(heap)
        if placed[x] or k != u[x]:
            continue  # stale heap entry; a fresh one was pushed on update
        placed[x] = True
        order[pos] = x
        pos += 1
        for y in x_adj[x_ptr[x]:x_ptr[x + 1]]:
            if not claimed[y]:
                claimed[y] = True
                for xn in y_adj[y_ptr[y]:y_ptr[y + 1]]:
                    if not placed[xn]:
                        u[xn] -= 1
                        if u[xn] > 0:
                            heapq.heappush(heap, (int(u[xn]), int(jitter[xn]), int(xn)))
    rest = np.flatnonzero(~placed)
    if rest.size:
        rest = rest[np.argsort(deg_x[rest], kind="stable")]
        order[pos:] = rest
    return order
