"""Fast binary (de)serialization of graphs and matchings via ``.npz``.

MatrixMarket (``repro.graph.io``) is the interchange format; this module is
the fast path for caching suite graphs and checkpointing matchings between
experiment runs. The file carries a format tag and version so stale caches
fail loudly instead of mis-deserialising.

Writes are atomic (temp file + :func:`os.replace` in the target directory):
the batch service checkpoints matchings through this module, and a crash
mid-write must leave either the old file or the new one, never a torn
half-checkpoint that a resume would then fail to load.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import BipartiteCSR
from repro.matching.base import Matching

_FORMAT = "repro-bipartite-csr"
_MATCHING_FORMAT = "repro-matching"
_VERSION = 1


def _atomic_savez(path: Union[str, Path], **arrays: np.ndarray) -> None:
    """``np.savez_compressed`` with write-then-rename atomicity.

    Mirrors numpy's path handling (a missing ``.npz`` suffix is appended)
    so callers see identical final filenames.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_graph(graph: BipartiteCSR, path: Union[str, Path]) -> None:
    """Write a graph to ``path`` (``.npz``); atomic against crashes."""
    _atomic_savez(
        path,
        format=np.array(_FORMAT),
        version=np.array(_VERSION),
        n_x=np.array(graph.n_x),
        n_y=np.array(graph.n_y),
        x_ptr=graph.x_ptr,
        x_adj=graph.x_adj,
        y_ptr=graph.y_ptr,
        y_adj=graph.y_adj,
    )


def load_graph(path: Union[str, Path]) -> BipartiteCSR:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        _check_header(data, _FORMAT, path)
        return BipartiteCSR(
            int(data["n_x"]),
            int(data["n_y"]),
            data["x_ptr"],
            data["x_adj"],
            data["y_ptr"],
            data["y_adj"],
            validate=False,
        )


def save_matching(matching: Matching, path: Union[str, Path]) -> None:
    """Write a matching to ``path`` (``.npz``); atomic against crashes."""
    _atomic_savez(
        path,
        format=np.array(_MATCHING_FORMAT),
        version=np.array(_VERSION),
        mate_x=matching.mate_x,
        mate_y=matching.mate_y,
    )


def load_matching(path: Union[str, Path]) -> Matching:
    """Read a matching written by :func:`save_matching`."""
    with np.load(path, allow_pickle=False) as data:
        _check_header(data, _MATCHING_FORMAT, path)
        mate_x = data["mate_x"]
        mate_y = data["mate_y"]
        return Matching(mate_x.shape[0], mate_y.shape[0], mate_x, mate_y)


def _check_header(data, expected_format: str, path) -> None:
    if "format" not in data or str(data["format"]) != expected_format:
        raise GraphFormatError(f"{path}: not a {expected_format} file")
    if int(data["version"]) > _VERSION:
        raise GraphFormatError(
            f"{path}: written by a newer version ({int(data['version'])} > {_VERSION})"
        )
