"""Static effect inference over shared arrays, for phase-safety checking.

The paper's correctness argument rests on a discipline: inside a
barrier-synchronized phase, shared state is only *claimed* through atomic
first-writer-wins operations (``__sync_fetch_and_or`` in the reference
implementation; ``AtomicArray.compare_and_swap`` here), while plain writes
are reserved for locations a thread exclusively owns. The dynamic race
detector (:mod:`repro.analysis.racecheck`) can only spot-check that
discipline on the schedules it happens to run; this module infers it
*statically*, for every function in the package, in the spirit of compiler
effect systems.

For each function definition (including nested functions — the engines'
phase bodies are closures) we infer an **effect summary** over named
arrays:

* ``reads`` — arrays read through subscription (``visited[y]``,
  ``state.leaf[safe]``) or through an atomic ``.load``;
* ``raw_writes`` — arrays written through plain subscript assignment
  (``visited[winners] = 1``), the write class that is invisible to the
  race detector and unsynchronised under the simulated memory model;
* ``atomic_writes`` — arrays written through the sanctioned channels:
  ``.store`` / ``.compare_and_swap`` / ``.fetch_and_or`` /
  ``.fetch_and_add`` on Atomic/Shared wrappers, the
  :class:`~repro.core.forest.ForestState` visited-transition helpers
  (``mark_visited`` / ``clear_visited``), and calls into functions marked
  as **commit boundaries** (decorated ``@superstep_commit``, see
  :mod:`repro.distributed.commit`) — the BSP analogue of an atomic claim,
  applied by the owning rank at a superstep boundary.

Summaries are propagated **interprocedurally** through a call graph built
from the same AST: a bare call resolves to a function visible in the
caller's scope chain (nested helpers first, then module scope), a dotted
call resolves through the module's imports, and callee effects on its own
*parameters* are translated to the caller's argument names before merging
(so a helper mutating ``arr`` flows back as an effect on the array the
caller actually passed). Effects on closure variables propagate by name —
exactly right for the engines, whose phase bodies and helpers share one
enclosing scope. The propagation runs to a fixpoint, so chains of helpers
and mutual recursion are handled.

Arrays are identified by dotted access path (``state.visited``,
``visited``); rules typically match on the path's last component, which is
stable across the engines' local aliasing (``visited = state.visited``).

This is a deliberately name-based, flow-insensitive analysis: it
over-approximates (a read anywhere in the function counts) and does not
track aliasing through assignments. That is the right trade for contract
checking — the phase rules in :mod:`repro.analysis.phasecheck` are chosen
so the over-approximation stays quiet on disciplined code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

ATOMIC_METHODS = frozenset(
    {"store", "compare_and_swap", "fetch_and_or", "fetch_and_add"}
)
"""Methods of AtomicArray/SharedArray that count as sanctioned writes."""

ATOMIC_LOAD_METHODS = frozenset({"load"})
"""Methods that count as (atomic) reads of the receiver array."""

VISITED_TRANSITION_HELPERS = frozenset(
    {"mark_visited", "clear_visited", "count_visit"}
)
"""ForestState methods that perform sanctioned visited-flag transitions."""

BITSET_WRITE_HELPERS = frozenset({"bitset_set", "bitset_clear"})
"""Packed-mirror updates; modelled as atomic fetch-or/fetch-and on arg 0."""

COMMIT_DECORATOR = "superstep_commit"
"""Decorator marking a function as a superstep-boundary commit helper.

A call to a decorated function is treated as an *atomic* write to every
array argument it receives — the static analogue of the owner-side
first-writer-wins resolution a BSP engine applies between supersteps."""


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted access path of a Name/Attribute chain, or None.

    ``state.visited`` -> ``"state.visited"``; anything rooted in a call or
    subscript (not a stable name) returns None.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def base_name(path: str) -> str:
    """Last component of a dotted access path (``state.visited`` -> ``visited``)."""
    return path.rsplit(".", 1)[-1]


@dataclass
class Effects:
    """Shared-array effect sets of one function (direct or summarized)."""

    reads: Set[str] = field(default_factory=set)
    raw_writes: Set[str] = field(default_factory=set)
    atomic_writes: Set[str] = field(default_factory=set)

    def copy(self) -> "Effects":
        return Effects(set(self.reads), set(self.raw_writes), set(self.atomic_writes))

    def merge(self, other: "Effects") -> bool:
        """Union ``other`` into self; True if anything was added."""
        before = (len(self.reads), len(self.raw_writes), len(self.atomic_writes))
        self.reads |= other.reads
        self.raw_writes |= other.raw_writes
        self.atomic_writes |= other.atomic_writes
        return before != (len(self.reads), len(self.raw_writes), len(self.atomic_writes))

    def translated(self, params: Tuple[str, ...], args: Tuple[Optional[str], ...]) -> "Effects":
        """Callee effects with parameter names rewritten to caller argument paths.

        ``params`` are the callee's positional parameter names; ``args`` the
        caller's argument access paths (None for non-name arguments).
        Effects on paths rooted at a parameter are rewritten to the
        corresponding argument path (or dropped when the argument is not a
        plain name — the caller has no stable name for that array); effects
        on closure/global names pass through unchanged.
        """
        mapping: Dict[str, Optional[str]] = dict(zip(params, args))

        def rewrite(paths: Set[str]) -> Set[str]:
            out: Set[str] = set()
            for path in paths:
                root, _, rest = path.partition(".")
                if root in mapping:
                    mapped = mapping[root]
                    if mapped is not None:
                        out.add(mapped + ("." + rest if rest else ""))
                else:
                    out.add(path)
            return out

        return Effects(
            rewrite(self.reads), rewrite(self.raw_writes), rewrite(self.atomic_writes)
        )

    def raw_write_read_overlap(self) -> Set[str]:
        """Arrays (by base name) both raw-written and read in this summary."""
        raw = {base_name(p) for p in self.raw_writes}
        read = {base_name(p) for p in self.reads}
        return raw & read


@dataclass
class CallSite:
    """One call from a function body, before resolution."""

    target: str
    """Dotted call path as written (``helper``, ``kernels.reset_rows``)."""
    args: Tuple[Optional[str], ...]
    """Access paths of positional arguments (None where not a plain name)."""
    lineno: int


@dataclass
class FunctionInfo:
    """Everything the analyzer knows about one function definition."""

    module: str
    """Package-relative posix path of the defining module."""
    qualname: str
    """Dotted name including enclosing functions (``run.topdown_program``)."""
    name: str
    lineno: int
    end_lineno: int
    params: Tuple[str, ...]
    is_generator: bool
    is_commit_boundary: bool
    direct: Effects
    calls: List[CallSite]
    local_names: FrozenSet[str] = frozenset()
    """Names bound by plain assignment in the body (thread-private data)."""
    summary: Effects = field(default_factory=Effects)
    resolved_calls: Set[str] = field(default_factory=set)
    """Keys (``module::qualname``) of call targets resolved in the package."""

    @property
    def key(self) -> str:
        return f"{self.module}::{self.qualname}"


def _own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested function defs."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _has_commit_decorator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in func.decorator_list:
        path = attr_chain(dec if not isinstance(dec, ast.Call) else dec.func)
        if path is not None and base_name(path) == COMMIT_DECORATOR:
            return True
    return False


def _bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """Names bound by plain assignment in the function's own body.

    Arrays freshly created inside a function (``compute = np.zeros(...)``)
    are thread/rank-private, not shared state; their effects must not
    propagate. Parameters are *not* local in this sense (they alias caller
    data), and ``nonlocal``/``global`` declarations un-localize a name.
    """
    bound: Set[str] = set()
    freed: Set[str] = set()
    params = {a.arg for a in func.args.args}
    params |= {a.arg for a in func.args.posonlyargs}
    params |= {a.arg for a in func.args.kwonlyargs}
    for special in (func.args.vararg, func.args.kwarg):
        if special is not None:
            params.add(special.arg)

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    for node in _own_statements(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                add_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            add_target(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add_target(node.target)
        elif isinstance(node, ast.NamedExpr):
            add_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
        elif isinstance(node, (ast.Nonlocal, ast.Global)):
            freed.update(node.names)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return (bound - freed) - params


def _collect_direct_effects(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Tuple[Effects, List[CallSite], bool]:
    """Direct (intraprocedural) effects, call sites, and generator-ness."""
    eff = Effects()
    calls: List[CallSite] = []
    is_generator = False
    for node in _own_statements(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            is_generator = True
        elif isinstance(node, ast.Subscript):
            path = attr_chain(node.value)
            if path is None:
                continue
            if isinstance(node.ctx, ast.Load):
                eff.reads.add(path)
            else:  # Store or Del context: a plain, unsynchronised write
                eff.raw_writes.add(path)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Subscript):
            # arr[i] += v both reads and raw-writes arr.
            path = attr_chain(node.target.value)
            if path is not None:
                eff.reads.add(path)
        elif isinstance(node, ast.Call):
            func_path = attr_chain(node.func)
            if func_path is None:
                continue
            method = base_name(func_path)
            receiver = func_path.rsplit(".", 1)[0] if "." in func_path else None
            if receiver is not None and method in ATOMIC_METHODS:
                eff.atomic_writes.add(receiver)
                if method == "compare_and_swap":
                    eff.reads.add(receiver)
                continue
            if receiver is not None and method in ATOMIC_LOAD_METHODS:
                eff.reads.add(receiver)
                continue
            if receiver is not None and method in VISITED_TRANSITION_HELPERS:
                # state.mark_visited(rows): sanctioned transition of the
                # visited byte array and its packed mirror.
                eff.atomic_writes.add(receiver + ".visited")
                eff.atomic_writes.add(receiver + ".visited_words")
                continue
            if method in BITSET_WRITE_HELPERS and node.args:
                # bitset_set(words, idx): an unbuffered fetch-or/fetch-and
                # on shared words — atomic by construction.
                arg0 = attr_chain(node.args[0])
                if arg0 is not None:
                    eff.atomic_writes.add(arg0)
                continue
            args = tuple(attr_chain(a) for a in node.args)
            calls.append(CallSite(target=func_path, args=args, lineno=node.lineno))
    return eff, calls, is_generator


def _drop_locals(eff: Effects, local: Set[str] | FrozenSet[str]) -> Effects:
    """Remove effects on paths rooted at function-local (private) names."""

    def keep(paths: Set[str]) -> Set[str]:
        return {p for p in paths if p.partition(".")[0] not in local}

    return Effects(keep(eff.reads), keep(eff.raw_writes), keep(eff.atomic_writes))


@dataclass
class ModuleInfo:
    """Per-module AST facts: functions, imports, and the parse tree."""

    relpath: str
    tree: ast.Module
    functions: Dict[str, FunctionInfo]
    """qualname -> info for every function defined in the module."""
    import_aliases: Dict[str, str]
    """local alias -> absolute module dotted path (``kernels`` ->
    ``repro.core.kernels``)."""
    from_imports: Dict[str, Tuple[str, str]]
    """local name -> (absolute module dotted path, original name)."""


def _module_dotted(relpath: str) -> str:
    """``core/kernels.py`` -> ``repro.core.kernels`` (best-effort)."""
    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in stem.split("/") if p != "__init__"]
    return ".".join(["repro"] + parts) if parts else "repro"


def _collect_module(relpath: str, tree: ast.Module) -> ModuleInfo:
    functions: Dict[str, FunctionInfo] = {}
    import_aliases: Dict[str, str] = {}
    from_imports: Dict[str, Tuple[str, str]] = {}

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                import_aliases[alias.asname or alias.name.split(".")[-1]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = (node.module, alias.name)

    def visit(func: ast.FunctionDef | ast.AsyncFunctionDef, prefix: str) -> None:
        qualname = f"{prefix}{func.name}" if prefix else func.name
        direct, calls, is_gen = _collect_direct_effects(func)
        local = _bound_names(func)
        direct = _drop_locals(direct, local)
        functions[qualname] = FunctionInfo(
            module=relpath,
            qualname=qualname,
            name=func.name,
            lineno=func.lineno,
            end_lineno=getattr(func, "end_lineno", func.lineno) or func.lineno,
            params=tuple(a.arg for a in func.args.args),
            is_generator=is_gen,
            is_commit_boundary=_has_commit_decorator(func),
            direct=direct,
            calls=calls,
            local_names=frozenset(local),
        )
        for child in ast.walk(func):
            if child is func:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Only immediate children here; deeper nesting recurses.
                if _enclosing_is(func, child):
                    visit(child, qualname + ".")

    def _enclosing_is(
        parent: ast.FunctionDef | ast.AsyncFunctionDef,
        child: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> bool:
        for node in _own_statements(parent):
            if node is child:
                return True
        return False

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit(node, "")
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(item, node.name + ".")

    return ModuleInfo(
        relpath=relpath,
        tree=tree,
        functions=functions,
        import_aliases=import_aliases,
        from_imports=from_imports,
    )


@dataclass
class PackageEffects:
    """Effect summaries for every function in a package tree."""

    modules: Dict[str, ModuleInfo]
    functions: Dict[str, FunctionInfo]
    """``module::qualname`` -> info, summaries populated."""

    def lookup(self, module: str, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{module}::{qualname}")

    def module_functions(self, relpath: str) -> List[FunctionInfo]:
        mod = self.modules.get(relpath)
        return list(mod.functions.values()) if mod is not None else []


def _index_by_dotted_module(modules: Dict[str, ModuleInfo]) -> Dict[str, str]:
    """Absolute dotted module path -> relpath, for import resolution."""
    out: Dict[str, str] = {}
    for relpath in modules:
        out[_module_dotted(relpath)] = relpath
    return out


def _resolve_call(
    site: CallSite,
    caller: FunctionInfo,
    mod: ModuleInfo,
    modules: Dict[str, ModuleInfo],
    dotted_index: Dict[str, str],
) -> Optional[FunctionInfo]:
    """Resolve one call site to a FunctionInfo in the package, if possible."""
    target = site.target
    if "." not in target:
        # Bare name: innermost enclosing scope first, then module scope,
        # then from-imports.
        scope = caller.qualname.split(".")
        for depth in range(len(scope), 0, -1):
            qual = ".".join(scope[:depth]) + "." + target
            if qual in mod.functions:
                return mod.functions[qual]
        if target in mod.functions:
            return mod.functions[target]
        if target in mod.from_imports:
            dotted, original = mod.from_imports[target]
            relpath = dotted_index.get(dotted)
            if relpath is not None and original in modules[relpath].functions:
                return modules[relpath].functions[original]
        return None
    head, _, rest = target.partition(".")
    if "." in rest:
        return None  # deep attribute call (obj.attr.method): not resolvable
    if head in ("self", "cls"):
        # Method call on the defining class: resolve as a sibling method.
        class_prefix = caller.qualname.rsplit(".", 1)[0] if "." in caller.qualname else ""
        if class_prefix:
            qual = f"{class_prefix}.{rest}"
            if qual in mod.functions:
                return mod.functions[qual]
        return None
    # ``module_alias.func`` through a plain import...
    if head in mod.import_aliases:
        relpath = dotted_index.get(mod.import_aliases[head])
        if relpath is not None and rest in modules[relpath].functions:
            return modules[relpath].functions[rest]
    # ...or ``submodule.func`` through a from-import of a module object.
    if head in mod.from_imports:
        dotted, original = mod.from_imports[head]
        relpath = dotted_index.get(f"{dotted}.{original}")
        if relpath is not None and rest in modules[relpath].functions:
            return modules[relpath].functions[rest]
    return None


def build_package_effects(root: Path | str) -> PackageEffects:
    """Parse every ``*.py`` under ``root`` and compute effect summaries.

    ``root`` may also be a single file. Files that fail to parse are
    skipped here — the lint driver reports them separately (REP000).
    """
    root = Path(root)
    modules: Dict[str, ModuleInfo] = {}
    paths = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for path in paths:
        relpath = path.name if root.is_file() else path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue
        modules[relpath] = _collect_module(relpath, tree)

    dotted_index = _index_by_dotted_module(modules)
    functions: Dict[str, FunctionInfo] = {}
    for mod in modules.values():
        for info in mod.functions.values():
            info.summary = info.direct.copy()
            functions[info.key] = info

    # Fixpoint propagation over the call graph: merge callee summaries
    # (translated through positional parameters) into callers until stable.
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for mod in modules.values():
            for info in mod.functions.values():
                for site in info.calls:
                    callee = _resolve_call(site, info, mod, modules, dotted_index)
                    if callee is None:
                        continue
                    info.resolved_calls.add(callee.key)
                    args = site.args
                    head = site.target.partition(".")[0]
                    if head in ("self", "cls") and callee.params[:1] and (
                        callee.params[0] in ("self", "cls")
                    ):
                        # Bound method call: the receiver is the implicit
                        # first argument, so align it with the self param.
                        args = (head,) + args
                    translated = callee.summary.translated(callee.params, args)
                    if callee.is_commit_boundary:
                        # A commit boundary is the sanctioned write channel:
                        # its raw writes surface to the caller as atomic.
                        translated = Effects(
                            reads=translated.reads,
                            raw_writes=set(),
                            atomic_writes=translated.raw_writes
                            | translated.atomic_writes,
                        )
                    translated = _drop_locals(translated, info.local_names)
                    if info.summary.merge(translated):
                        changed = True

    return PackageEffects(modules=modules, functions=functions)
