"""Dynamic data-race detection for the MS-BFS-Graft parallel engines.

The interleaved engine's item programs route every shared access through
:class:`~repro.parallel.shared.SharedArray` /
:class:`~repro.parallel.atomics.AtomicArray`, which report to an attached
:class:`RaceMonitor`. The monitor stamps each access with its simulated
thread, global step, and barrier region, producing a complete shared-memory
access log of one run. The vectorized numpy engine has no item programs;
its bulk kernels self-report through :class:`BulkRaceMonitor` instead, and
the same analysis (:func:`find_races`) and whitelist apply.

**Happens-before model.** Three orderings, matching the OpenMP program the
paper describes:

1. *program order* — accesses of one thread are ordered by step;
2. *barrier edges* — every ``parallel for`` region is barrier-delimited,
   so accesses in different regions are totally ordered (serial code
   between regions is ordered with both sides for free);
3. *atomic synchronisation* — CAS / fetch-and-or / fetch-and-add and
   atomic loads synchronise; two accesses that are **both** atomic never
   form a data race (C11 semantics for atomic objects).

Hence two accesses are a **data race** iff they fall in the *same* region,
come from *different* threads, touch the same ``(array, index)`` location,
at least one is a write, and they are not both atomic. (Step order within a
region is irrelevant: the scheduler could legally reorder them.)

**Benign classification.** The paper argues one deliberate race is safe:
concurrent ``leaf[root]`` updates are last-writer-wins, and whichever write
survives, the tree holds exactly one valid augmenting path. The default
whitelist encodes that claim, plus the bottom-up kernel's racy read of
``root_x`` (a stale read only delays a vertex's adoption by one level).
Everything else — in particular any plain access to ``visited``, which the
:data:`~repro.core.engine_interleaved.NON_ATOMIC_VISITED` fault injection
produces — is reported **harmful**.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.invariants import InvariantChecker
from repro.core.options import GraftOptions
from repro.errors import ReproError
from repro.graph.csr import BipartiteCSR
from repro.matching.base import MatchResult, Matching
from repro.parallel.shared import WRITE
from repro.util.rng import SeedLike


@dataclass(frozen=True)
class AccessEvent:
    """One shared-array access, stamped by the monitor."""

    region: int
    step: int
    thread: int
    array: str
    index: int
    kind: str  # repro.parallel.shared.READ or WRITE
    atomic: bool


@dataclass(frozen=True)
class BenignRule:
    """Whitelist entry: races on ``array`` are benign, with a reason.

    ``allow_write_write=False`` restricts the rule to read-write races —
    e.g. concurrent *writes* to ``root_x`` would still be harmful, only
    stale reads are excused.
    """

    array: str
    allow_write_write: bool
    reason: str


DEFAULT_WHITELIST: Tuple[BenignRule, ...] = (
    BenignRule(
        "leaf",
        allow_write_write=True,
        reason=(
            "paper §III-B benign race: concurrent leaf[root] updates are "
            "last-writer-wins; the tree keeps exactly one augmenting path"
        ),
    ),
    BenignRule(
        "root_x",
        allow_write_write=False,
        reason=(
            "bottom-up/graft scan may read a stale tree-membership pointer; "
            "the vertex simply joins a tree one level later"
        ),
    ),
)


@dataclass(frozen=True)
class Race:
    """A data race at one ``(region, array, index)`` location."""

    array: str
    index: int
    region: int
    threads: Tuple[int, ...]
    write_write: bool
    benign: bool
    reason: str

    def render(self) -> str:
        kind = "write-write" if self.write_write else "read-write"
        tag = "benign " if self.benign else "HARMFUL"
        return (
            f"[{tag}] {kind} race on {self.array}[{self.index}] in region "
            f"{self.region} between threads {list(self.threads)}: {self.reason}"
        )


@dataclass
class RaceReport:
    """Classified result of analysing one run's access log."""

    races: List[Race]
    events: int
    regions: int
    error: Optional[str] = None
    """Set when the run aborted (e.g. an InvariantViolation from injected
    faults); the races collected up to the abort are still reported."""

    @property
    def benign(self) -> List[Race]:
        return [r for r in self.races if r.benign]

    @property
    def harmful(self) -> List[Race]:
        return [r for r in self.races if not r.benign]

    def summary(self) -> str:
        lines = [
            f"access events : {self.events}",
            f"regions       : {self.regions}",
            f"races         : {len(self.races)} "
            f"({len(self.benign)} benign, {len(self.harmful)} harmful)",
        ]
        if self.error:
            lines.append(f"run aborted   : {self.error}")
        for race in self.races:
            lines.append("  " + race.render())
        return "\n".join(lines)


def _classify(
    array: str, write_write: bool, whitelist: Iterable[BenignRule]
) -> Tuple[bool, str]:
    for rule in whitelist:
        if rule.array == array and (rule.allow_write_write or not write_write):
            return True, rule.reason
    return False, (
        "unsynchronised conflicting access outside the benign-race whitelist"
    )


def find_races(
    events: Iterable[AccessEvent],
    whitelist: Iterable[BenignRule] = DEFAULT_WHITELIST,
) -> List[Race]:
    """Group the access log by location and extract data races.

    Within one region, a location races iff two different threads make
    conflicting (at least one write, not both atomic) accesses to it.
    """
    by_loc: Dict[Tuple[int, str, int], List[AccessEvent]] = defaultdict(list)
    for ev in events:
        by_loc[(ev.region, ev.array, ev.index)].append(ev)

    races: List[Race] = []
    for (region, array, index), evs in sorted(by_loc.items()):
        plain_writers: Set[int] = set()
        atomic_writers: Set[int] = set()
        plain_readers: Set[int] = set()
        atomic_readers: Set[int] = set()
        for ev in evs:
            if ev.kind == WRITE:
                (atomic_writers if ev.atomic else plain_writers).add(ev.thread)
            else:
                (atomic_readers if ev.atomic else plain_readers).add(ev.thread)

        write_write = len(plain_writers) >= 2 or (
            len(plain_writers) == 1 and bool(atomic_writers - plain_writers)
        )
        read_write = any(
            (plain_readers | atomic_readers) - {w} for w in plain_writers
        ) or any(plain_readers - {w} for w in atomic_writers)
        if not (write_write or read_write):
            continue

        threads = sorted(plain_writers | atomic_writers | plain_readers | atomic_readers)
        benign, reason = _classify(array, write_write, whitelist)
        races.append(
            Race(
                array=array,
                index=index,
                region=region,
                threads=tuple(threads),
                write_write=write_write,
                benign=benign,
                reason=reason,
            )
        )
    return races


class RaceMonitor:
    """Access observer + region hooks; plug into ``run_interleaved(monitor=...)``.

    Records every in-region shared access (serial code between barriers is
    ordered by the barrier edges and cannot race, so it is skipped) and,
    when ``check_invariants`` is on, re-verifies the engine invariants
    after every barrier and phase.
    """

    def __init__(
        self,
        *,
        check_invariants: bool = True,
        whitelist: Iterable[BenignRule] = DEFAULT_WHITELIST,
    ) -> None:
        self.events: List[AccessEvent] = []
        self.whitelist = tuple(whitelist)
        self._check_invariants = check_invariants
        self._sim = None
        self.invariant_checker: Optional[InvariantChecker] = None
        self.barriers = 0

    # -- engine-facing hooks (RegionMonitor protocol) -------------------- #

    def bind(self, *, sim, graph, state, matching) -> None:
        self._sim = sim
        if self._check_invariants:
            self.invariant_checker = InvariantChecker(graph, state, matching)

    def record(self, array: str, index: int, kind: str, atomic: bool) -> None:
        sim = self._sim
        if sim is None or sim.current_thread is None:
            return  # serial access between regions: ordered by barriers
        self.events.append(
            AccessEvent(
                region=sim.regions_run,
                step=sim.total_steps,
                thread=sim.current_thread,
                array=array,
                index=int(index),
                kind=kind,
                atomic=atomic,
            )
        )

    def after_barrier(self) -> None:
        self.barriers += 1
        if self.invariant_checker is not None:
            self.invariant_checker.check()

    def after_phase(self) -> None:
        if self.invariant_checker is not None:
            self.invariant_checker.check()

    # -- analysis -------------------------------------------------------- #

    def analyze(self) -> RaceReport:
        races = find_races(self.events, self.whitelist)
        regions = len({ev.region for ev in self.events})
        return RaceReport(races=races, events=len(self.events), regions=regions)


class BulkRaceMonitor:
    """Race detection for the vectorized engine's bulk kernels.

    The numpy fast path performs whole-frontier scatter/gather operations
    instead of per-item programs, so the interleaved engine's step-level
    monitor never sees it. The kernels instead report each bulk access
    through the :class:`~repro.parallel.shared.BulkAccessObserver` protocol
    (``state.observer``), attributing every element access to the *logical*
    thread that owns it — the frontier X vertex in top-down, the row Y
    vertex in bottom-up, the tree root in augmentation. Expanding those
    reports element-wise yields the same :class:`AccessEvent` log the
    interleaved monitor produces, so :func:`find_races` and the benign
    whitelist apply unchanged (see ``docs/race_semantics.md``).

    Each ``begin_region`` call opens a new barrier-delimited region: one
    vectorized kernel call corresponds to one ``parallel for`` of the
    OpenMP program.
    """

    def __init__(self, whitelist: Iterable[BenignRule] = DEFAULT_WHITELIST) -> None:
        self.events: List[AccessEvent] = []
        self.whitelist = tuple(whitelist)
        self.regions_run = 0
        self.region_kinds: List[str] = []
        self._step = 0

    # -- kernel-facing hooks (BulkAccessObserver protocol) ---------------- #

    def begin_region(self, kind: str) -> None:
        self.regions_run += 1
        self.region_kinds.append(kind)

    def record_bulk(self, array, indices, kind, atomic, threads) -> None:
        import numpy as np

        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        thr = np.broadcast_to(np.asarray(threads, dtype=np.int64), idx.shape)
        for i, t in zip(idx.tolist(), thr.tolist()):
            self.events.append(
                AccessEvent(
                    region=self.regions_run,
                    step=self._step,
                    thread=t,
                    array=str(array),
                    index=i,
                    kind=kind,
                    atomic=bool(atomic),
                )
            )
            self._step += 1

    # -- analysis -------------------------------------------------------- #

    def analyze(self) -> RaceReport:
        races = find_races(self.events, self.whitelist)
        regions = len({ev.region for ev in self.events})
        return RaceReport(races=races, events=len(self.events), regions=regions)


@dataclass
class RaceCheckOutcome:
    """Everything one monitored run produced."""

    report: RaceReport
    result: Optional[MatchResult]
    invariant_checks: int = 0
    cas_failures: int = 0
    seed: int = 0

    @property
    def ok(self) -> bool:
        """True iff the run completed with no harmful races."""
        return self.report.error is None and not self.report.harmful


def run_racecheck(
    graph: BipartiteCSR,
    initial: Optional[Matching] = None,
    *,
    threads: int = 4,
    seed: SeedLike = 0,
    options: Optional[GraftOptions] = None,
    fault_injection: Iterable[str] = (),
    check_invariants: bool = True,
    whitelist: Iterable[BenignRule] = DEFAULT_WHITELIST,
    engine: str = "interleaved",
) -> RaceCheckOutcome:
    """Run MS-BFS-Graft under the race detector.

    ``engine="interleaved"`` (default) simulates concurrent item programs
    and monitors every shared access at step granularity; ``threads`` and
    ``seed`` select the schedule. ``engine="numpy"`` runs the vectorized
    fast path with a :class:`BulkRaceMonitor` attached, auditing the bulk
    kernels' reported footprint instead — deterministic, so ``threads``,
    ``seed`` and ``fault_injection`` do not apply.

    Fault-injected runs may corrupt shared state; the invariant checker
    (or the engine's own safety bounds) then aborts the run, which is
    recorded in ``report.error`` — the races observed up to the abort are
    still analysed and classified.
    """
    from repro.core.engine_interleaved import run_interleaved

    if engine == "numpy":
        from repro.core.engine_numpy import run_numpy

        if fault_injection:
            raise ReproError(
                "fault injection targets the interleaved engine's item "
                "programs; not available with engine='numpy'"
            )
        bulk = BulkRaceMonitor(whitelist=whitelist)
        opts = dataclasses.replace(
            options or GraftOptions(), check_invariants=check_invariants
        )
        np_result: Optional[MatchResult] = None
        np_error: Optional[str] = None
        try:
            np_result = run_numpy(graph, initial, opts, observer=bulk)
        except ReproError as exc:
            np_error = f"{type(exc).__name__}: {exc}"
        np_report = bulk.analyze()
        np_report.error = np_error
        return RaceCheckOutcome(report=np_report, result=np_result)
    if engine != "interleaved":
        raise ReproError(
            f"unknown racecheck engine {engine!r}; expected 'interleaved' or 'numpy'"
        )

    monitor = RaceMonitor(check_invariants=check_invariants, whitelist=whitelist)
    result: Optional[MatchResult] = None
    error: Optional[str] = None
    try:
        result = run_interleaved(
            graph,
            initial,
            options or GraftOptions(),
            threads=threads,
            seed=seed,
            monitor=monitor,
            fault_injection=fault_injection,
            max_phases=4 * (graph.n_x + graph.n_y) + 8,
        )
    except ReproError as exc:  # includes InvariantViolation
        error = f"{type(exc).__name__}: {exc}"
    report = monitor.analyze()
    report.error = error
    checker = monitor.invariant_checker
    return RaceCheckOutcome(
        report=report,
        result=result,
        invariant_checks=checker.checks_run if checker is not None else 0,
        seed=int(seed) if isinstance(seed, int) else 0,
    )
