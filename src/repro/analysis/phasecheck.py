"""Phase-discipline contract checking over static effect summaries.

The MS-BFS-Graft engines share one correctness contract (the "phase
discipline"): work happens in barrier-synchronized phases, shared arrays
are claimed only through atomic first-writer-wins channels, the packed
``visited_words`` mirror tracks every byte-view transition, and every
phase-loop iteration passes through ``GraftOptions.begin_phase`` (which
bundles ``Deadline.check``, the telemetry phase span, and ``phase_hook``).
This module checks that contract statically, against the interprocedural
effect summaries of :mod:`repro.analysis.effects`, and extends the lint
rule set (REP001–REP003, :mod:`repro.analysis.lint`) with:

* **REP004 raw-write-in-phase** — inside a *phase body* (a generator item
  program under ``core/``/``parallel/``, or a phase closure in a
  distributed engine), no shared array may be both raw-written and read —
  that read/write pair is exactly the race window the atomic claim
  protocol exists to close — and the claim arrays (``visited`` /
  ``parent`` / ``root_y``) may only be written through CAS or a
  ``@superstep_commit`` helper in top-down/graft code. Effects reach
  through helpers: a phase body that calls a raw-writing helper is
  flagged even though no subscript assignment appears in its own text.
* **REP005 missing-deadline-check** — every engine phase loop (a
  ``while`` loop advancing a ``.phases`` counter in an engine module)
  must call ``begin_phase(...)``, so Deadline enforcement, the telemetry
  span, and ``phase_hook`` fire on every phase of every engine.
* **REP006 unsynced-bitset-mirror** — in core modules that maintain the
  packed ``visited_words`` mirror, any function raw-writing a ``visited``
  byte-view must also update the mirror (``bitset_set``/``bitset_clear``
  or the ``mark_visited``/``clear_visited`` helpers) — a byte write
  without the word write silently breaks the direction-optimizer's
  claim mirror.
* **REP007 unused-suppression** — a ``# lint: allow-<rule>`` comment that
  masks no violation (or names no known rule) must be removed; stale
  suppressions hide future regressions.
* **REP008 bare-except-in-engine** — ``except:`` / ``except
  BaseException`` in engine code (``core/``, ``distributed/``,
  ``parallel/``) swallows ``DeadlineExceeded`` and breaks the time-budget
  contract.

Findings carry package-relative paths and stable fingerprints; a
committed baseline file (``analysis-baseline.json``) lets a finding be
acknowledged without being fixed, so the CI gate only fails on *new*
findings. Run via ``repro-match analyze`` with ``--format
text|json|sarif``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.effects import (
    PackageEffects,
    attr_chain,
    base_name,
    build_package_effects,
)
from repro.analysis.lint import (
    DEFAULT_ROOT,
    RULES as LINT_RULES,
    lint_file,
    suppressed_at,
    suppression_lines,
)

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

PHASE_NAME_MARKERS = ("topdown", "bottomup", "graft", "augment", "resolve", "claim")
"""Name fragments identifying phase closures in the distributed engines."""

CLAIM_PHASE_MARKERS = ("topdown", "graft", "resolve", "claim")
"""Phase bodies in which the claim arrays may only be written atomically."""

CLAIM_ARRAYS = frozenset({"visited", "parent", "root_y"})
"""Arrays claimed first-writer-wins by the tree-growing phases."""

ENGINE_MODULE_PATTERNS = ("core/engine_*.py", "distributed/engine*.py")
ENGINE_DIR_PATTERNS = ("core/*.py", "distributed/*.py", "parallel/*.py")

# One finding, pre-suppression: (relpath, line, col, message).
RawFinding = Tuple[str, int, int, str]
PhaseCheckFn = Callable[[PackageEffects], Iterator[RawFinding]]


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, addressed by package-relative path."""

    path: str
    line: int
    col: int
    code: str
    name: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + file + message.

        Line numbers are deliberately excluded so unrelated edits above a
        baselined finding do not resurrect it.
        """
        raw = f"{self.code}|{self.path}|{self.message}".encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} ({self.name}) {self.message}"


@dataclass(frozen=True)
class PhaseRule:
    """A package-level contract rule over effect summaries.

    ``check`` is None for REP007, which the runner evaluates last (it
    needs to know which suppressions every *other* rule consumed).
    """

    code: str
    name: str
    description: str
    check: Optional[PhaseCheckFn]


# --------------------------------------------------------------------------- #
# REP004: no raw-write/read pairs in phase bodies; claims go through CAS
# --------------------------------------------------------------------------- #


def _is_phase_body(module: str, name: str, is_generator: bool, is_commit: bool) -> bool:
    if is_commit:
        # Commit helpers *are* the sanctioned write channel; they run at
        # the superstep barrier, outside any phase body.
        return False
    if is_generator and any(
        fnmatch(module, pat) for pat in ("core/*.py", "parallel/*.py")
    ):
        return True
    return fnmatch(module, "distributed/engine*.py") and any(
        marker in name.lower() for marker in PHASE_NAME_MARKERS
    )


def _check_raw_write_in_phase(pkg: PackageEffects) -> Iterator[RawFinding]:
    for info in pkg.functions.values():
        if not _is_phase_body(
            info.module, info.name, info.is_generator, info.is_commit_boundary
        ):
            continue
        overlap = sorted(info.summary.raw_write_read_overlap())
        if overlap:
            yield (
                info.module,
                info.lineno,
                0,
                f"phase body {info.name!r} both raw-writes and reads shared "
                f"array(s) {', '.join(overlap)} (directly or via helpers); "
                f"writes inside a phase must go through atomic ops or a "
                f"@superstep_commit helper",
            )
        if any(marker in info.name.lower() for marker in CLAIM_PHASE_MARKERS):
            raw = {base_name(p) for p in info.summary.raw_writes}
            claims = sorted((raw & CLAIM_ARRAYS) - set(overlap))
            if claims:
                yield (
                    info.module,
                    info.lineno,
                    0,
                    f"phase body {info.name!r} raw-writes claim array(s) "
                    f"{', '.join(claims)}; claims must be first-writer-wins "
                    f"(compare_and_swap or a @superstep_commit helper)",
                )


# --------------------------------------------------------------------------- #
# REP005: every engine phase loop runs begin_phase (deadline + hook + span)
# --------------------------------------------------------------------------- #


def _check_missing_deadline(pkg: PackageEffects) -> Iterator[RawFinding]:
    for relpath, mod in pkg.modules.items():
        if not any(fnmatch(relpath, pat) for pat in ENGINE_MODULE_PATTERNS):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.While):
                continue
            advances_phase = False
            calls_begin_phase = False
            for sub in ast.walk(node):
                target: Optional[ast.expr] = None
                if isinstance(sub, ast.AugAssign):
                    target = sub.target
                elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                if target is not None:
                    path = attr_chain(target)
                    if path is not None and base_name(path) == "phases":
                        advances_phase = True
                if isinstance(sub, ast.Call):
                    path = attr_chain(sub.func)
                    if path is not None and base_name(path) == "begin_phase":
                        calls_begin_phase = True
            if advances_phase and not calls_begin_phase:
                yield (
                    relpath,
                    node.lineno,
                    node.col_offset,
                    "engine phase loop never calls begin_phase(...): "
                    "Deadline.check, the telemetry phase span, and "
                    "phase_hook are all skipped — call "
                    "options.begin_phase(phases) at the top of the loop",
                )


# --------------------------------------------------------------------------- #
# REP006: visited byte-view writes keep the packed bitset mirror in step
# --------------------------------------------------------------------------- #


def _module_mentions_mirror(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "visited_words":
            return True
        if isinstance(node, ast.Name) and node.id == "visited_words":
            return True
    return False


def _check_bitset_mirror(pkg: PackageEffects) -> Iterator[RawFinding]:
    for relpath, mod in pkg.modules.items():
        if not fnmatch(relpath, "core/*.py"):
            continue
        if not _module_mentions_mirror(mod.tree):
            continue
        for info in mod.functions.values():
            byte_writes = sorted(
                p for p in info.direct.raw_writes if base_name(p) == "visited"
            )
            if not byte_writes:
                continue
            mirror_writes = {
                p
                for p in info.direct.raw_writes | info.direct.atomic_writes
                if base_name(p) == "visited_words"
            }
            if not mirror_writes:
                yield (
                    relpath,
                    info.lineno,
                    0,
                    f"{info.name!r} writes the visited byte-view "
                    f"({', '.join(byte_writes)}) without updating the "
                    f"visited_words bitset mirror; use "
                    f"mark_visited/clear_visited or pair the write with "
                    f"bitset_set/bitset_clear",
                )


# --------------------------------------------------------------------------- #
# REP008: no bare except in engine code
# --------------------------------------------------------------------------- #


def _check_bare_except(pkg: PackageEffects) -> Iterator[RawFinding]:
    for relpath, mod in pkg.modules.items():
        if not any(fnmatch(relpath, pat) for pat in ENGINE_DIR_PATTERNS):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            bare = node.type is None
            base_exc = isinstance(node.type, ast.Name) and node.type.id == "BaseException"
            if bare or base_exc:
                what = "bare 'except:'" if bare else "'except BaseException'"
                yield (
                    relpath,
                    node.lineno,
                    node.col_offset,
                    f"{what} in engine code swallows DeadlineExceeded and "
                    f"KeyboardInterrupt, breaking the time-budget contract; "
                    f"catch a concrete exception type",
                )


PHASE_RULES: Tuple[PhaseRule, ...] = (
    PhaseRule(
        code="REP004",
        name="raw-write-in-phase",
        description=(
            "phase bodies never raw-write shared arrays they read; claim "
            "arrays are written first-writer-wins only"
        ),
        check=_check_raw_write_in_phase,
    ),
    PhaseRule(
        code="REP005",
        name="missing-deadline-check",
        description=(
            "every engine phase loop calls begin_phase (Deadline.check + "
            "telemetry span + phase_hook)"
        ),
        check=_check_missing_deadline,
    ),
    PhaseRule(
        code="REP006",
        name="unsynced-bitset-mirror",
        description=(
            "visited byte-view writes update the packed visited_words mirror"
        ),
        check=_check_bitset_mirror,
    ),
    PhaseRule(
        code="REP007",
        name="unused-suppression",
        description="every lint suppression comment masks a real violation",
        check=None,
    ),
    PhaseRule(
        code="REP008",
        name="bare-except-in-engine",
        description="no bare except / except BaseException in engine code",
        check=_check_bare_except,
    ),
)


def rule_catalog() -> List[Tuple[str, str, str]]:
    """(code, name, description) for every analyzer rule, REP001–REP008."""
    out = [(r.code, r.name, r.description) for r in LINT_RULES]
    out += [(r.code, r.name, r.description) for r in PHASE_RULES]
    return sorted(out)


_NAME_TO_CODE: Dict[str, str] = {name: code for code, name, _ in rule_catalog()}


def _active_codes(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Set[str]:
    """Rule codes left active after ``--select``/``--ignore`` filtering.

    Keys may be codes (``REP004``) or names (``raw-write-in-phase``),
    case-insensitive; unknown keys raise ValueError.
    """
    catalog = rule_catalog()
    by_key: Dict[str, str] = {}
    for code, name, _ in catalog:
        by_key[code.upper()] = code
        by_key[name.upper()] = code

    def resolve(keys: Optional[Iterable[str]]) -> Set[str]:
        out: Set[str] = set()
        unknown: List[str] = []
        for key in keys or ():
            code = by_key.get(key.strip().upper())
            if code is None:
                unknown.append(key)
            else:
                out.add(code)
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        return out

    selected = resolve(select)
    ignored = resolve(ignore)
    active = selected if selected else {code for code, _, _ in catalog}
    return active - ignored


def _split_rule(rule: str) -> Tuple[str, str]:
    """``"REP001 (shared-array-mutation)"`` -> ``("REP001", "shared-array-mutation")``."""
    if " (" in rule:
        code, _, rest = rule.partition(" (")
        return code, rest.rstrip(")")
    return rule, "parse-error"


_ALLOW_RE = re.compile(r"lint:\s*allow-([A-Za-z0-9_-]+)")


def _check_unused_suppressions(
    root: Path, active: Set[str], used: Set[Tuple[str, int]]
) -> Iterator[Finding]:
    """REP007: allow-comments that masked nothing, or name unknown rules.

    A suppression for a rule *not* active in this invocation is skipped —
    it cannot be judged unused when its rule never ran. REP007 itself is
    not suppressible; acknowledged findings go in the baseline.
    """
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        try:
            tokens = list(
                tokenize.generate_tokens(
                    io.StringIO(path.read_text(encoding="utf-8")).readline
                )
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            continue
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            name = match.group(1)
            line, col = tok.start
            code = _NAME_TO_CODE.get(name)
            if code is None:
                yield Finding(
                    path=relpath,
                    line=line,
                    col=col,
                    code="REP007",
                    name="unused-suppression",
                    message=(
                        f"suppression references unknown rule {name!r}; "
                        f"known rules: "
                        f"{', '.join(sorted(_NAME_TO_CODE))}"
                    ),
                )
                continue
            if code not in active or code == "REP007":
                continue
            if (relpath, line) not in used:
                yield Finding(
                    path=relpath,
                    line=line,
                    col=col,
                    code="REP007",
                    name="unused-suppression",
                    message=(
                        f"suppression 'allow-{name}' masks no violation; "
                        f"remove the stale comment"
                    ),
                )


def run_analyze(
    root: Path | str = DEFAULT_ROOT,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every analyzer rule (REP001–REP008) over a package tree.

    Returns *all* findings, pre-baseline, sorted by location. Suppression
    comments are honored per rule (except REP007); parse failures surface
    as REP000 regardless of filtering.
    """
    root = Path(root)
    active = _active_codes(select, ignore)
    pkg = build_package_effects(root)
    used: Set[Tuple[str, int]] = set()
    findings: List[Finding] = []

    lint_rules = tuple(r for r in LINT_RULES if r.code in active)
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        for violation in lint_file(path, relpath, lint_rules, used):
            code, name = _split_rule(violation.rule)
            findings.append(
                Finding(
                    path=relpath,
                    line=violation.line,
                    col=violation.col,
                    code=code,
                    name=name,
                    message=violation.message,
                )
            )

    source_cache: Dict[str, List[str]] = {}
    for rule in PHASE_RULES:
        if rule.code not in active or rule.check is None:
            continue
        for relpath, line, col, message in rule.check(pkg):
            mod = pkg.modules.get(relpath)
            if mod is not None:
                if relpath not in source_cache:
                    source_cache[relpath] = (
                        (root / relpath).read_text(encoding="utf-8").splitlines()
                    )
                hit = suppressed_at(
                    source_cache[relpath],
                    suppression_lines(mod.tree, line),
                    rule.name,
                )
                if hit is not None:
                    used.add((relpath, hit))
                    continue
            findings.append(
                Finding(
                    path=relpath,
                    line=line,
                    col=col,
                    code=rule.code,
                    name=rule.name,
                    message=message,
                )
            )

    if "REP007" in active:
        findings.extend(_check_unused_suppressions(root, active, used))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints acknowledged in a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}; "
            f"expected {BASELINE_VERSION}"
        )
    return {str(entry["fingerprint"]) for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current finding set as the acknowledged baseline."""
    data = {
        "version": BASELINE_VERSION,
        "comment": (
            "Acknowledged repro-match analyze findings. Entries are matched "
            "by fingerprint (rule + path + message, line-independent). "
            "Keep this empty: fix findings instead of baselining them."
        ),
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in findings
        ],
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], acknowledged: Set[str]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, count-baselined)."""
    fresh = [f for f in findings if f.fingerprint not in acknowledged]
    return fresh, len(findings) - len(fresh)


# --------------------------------------------------------------------------- #
# output formats
# --------------------------------------------------------------------------- #


def summarize_findings(findings: Sequence[Finding], baselined: int) -> str:
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    if findings:
        parts = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
        noun = "finding" if len(findings) == 1 else "findings"
        head = f"{len(findings)} {noun} ({parts})"
    else:
        head = "analyze clean: 0 findings"
    if baselined:
        head += f"; {baselined} baselined"
    return head


def format_text(findings: Sequence[Finding], baselined: int) -> str:
    lines = [f.render() for f in findings]
    lines.append(summarize_findings(findings, baselined))
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], baselined: int, root: str) -> str:
    data = {
        "root": root,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.code,
                "name": f.name,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ],
        "baselined": baselined,
        "summary": summarize_findings(findings, baselined),
    }
    return json.dumps(data, indent=2)


def format_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 — what CI uploads for code-scanning display."""
    rules = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": description},
            "helpUri": "docs/static_analysis.md",
        }
        for code, name, description in rule_catalog()
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f"({f.name}) {f.message}"},
            "partialFingerprints": {"reproAnalyze/v1": f.fingerprint},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(f.col, 0) + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-match-analyze",
                        "informationUri": "docs/static_analysis.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "src/repro/"}},
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
