"""Correctness tooling for the parallel matching engine.

Four layers, each an executable form of an argument the paper makes in
prose (Section III-B):

* :mod:`repro.analysis.racecheck` — a dynamic race detector over the
  interleaved simulator's shared-access log: derives happens-before from
  barriers and atomic operations, reports data races, and classifies them
  *benign* (the whitelisted ``leaf`` last-writer-wins race) or *harmful*;
* :mod:`repro.analysis.invariants` — post-barrier/post-phase checks that
  the matching is mutually consistent, BFS trees are vertex-disjoint, and
  augmenting paths alternate;
* :mod:`repro.analysis.lint` — repo-specific AST lint rules (shared-array
  mutation discipline, no global RNG state, no wall-clock in cost models)
  behind the ``repro-match lint`` subcommand;
* :mod:`repro.analysis.effects` + :mod:`repro.analysis.phasecheck` — a
  static phase-safety analyzer: per-function effect summaries over shared
  arrays (read / raw-written / atomically written), propagated through the
  call graph, checked against the engines' phase-discipline contracts
  (rules REP004–REP008) behind ``repro-match analyze``.
"""

from repro.analysis.effects import (
    Effects,
    FunctionInfo,
    PackageEffects,
    build_package_effects,
)
from repro.analysis.invariants import InvariantChecker, check_all_invariants
from repro.analysis.lint import LintViolation, filter_rules, run_lint
from repro.analysis.phasecheck import (
    Finding,
    apply_baseline,
    load_baseline,
    rule_catalog,
    run_analyze,
    write_baseline,
)
from repro.analysis.racecheck import RaceMonitor, RaceReport, run_racecheck

__all__ = [
    "InvariantChecker",
    "check_all_invariants",
    "LintViolation",
    "filter_rules",
    "run_lint",
    "RaceMonitor",
    "RaceReport",
    "run_racecheck",
    "Effects",
    "FunctionInfo",
    "PackageEffects",
    "build_package_effects",
    "Finding",
    "apply_baseline",
    "load_baseline",
    "rule_catalog",
    "run_analyze",
    "write_baseline",
]
