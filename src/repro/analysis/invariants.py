"""Runtime invariant checks for the MS-BFS-Graft engine.

These are the paper's structural correctness claims as executable checks,
raising :class:`~repro.errors.InvariantViolation` (never bare ``assert``,
which disappears under ``python -O``) so fault-injected runs fail loudly:

* **mate consistency** — ``mate_x`` and ``mate_y`` are mutual inverses, in
  range, and every matched pair is an edge of the graph;
* **tree disjointness** — every visited Y vertex has exactly one parent
  whose tree root agrees with its own (atomic ``visited`` claims make
  this hold under any interleaving; a de-atomised claim breaks it);
* **alternating paths** — each live root's ``leaf`` pointer reaches the
  root through a cycle-free path that strictly alternates unmatched and
  matched edges.

The :class:`InvariantChecker` bundles all three for use as a
post-barrier/post-phase hook (the race monitor drives it after every
simulated barrier).
"""

from __future__ import annotations

import numpy as np

from repro.core.forest import ForestState
from repro.errors import InvariantViolation
from repro.graph.csr import BipartiteCSR
from repro.matching.base import UNMATCHED, Matching


def check_mate_consistency(graph: BipartiteCSR, matching: Matching) -> None:
    """``mate_x``/``mate_y`` are mutual inverses over edges of the graph."""
    mx, my = matching.mate_x, matching.mate_y
    matched_x = np.flatnonzero(mx != UNMATCHED)
    if matched_x.size:
        ys = mx[matched_x]
        if int(ys.min()) < 0 or int(ys.max()) >= matching.n_y:
            raise InvariantViolation("mate_x points outside the Y vertex range")
        bad = matched_x[my[ys] != matched_x]
        if bad.size:
            x = int(bad[0])
            raise InvariantViolation(
                f"mate asymmetry: mate_x[{x}]={int(mx[x])} but "
                f"mate_y[{int(mx[x])}]={int(my[mx[x]])}"
            )
        for x in matched_x:
            if not graph.has_edge(int(x), int(mx[x])):
                raise InvariantViolation(
                    f"matched pair ({int(x)}, {int(mx[x])}) is not an edge of the graph"
                )
    matched_y = np.flatnonzero(my != UNMATCHED)
    if matched_y.size:
        xs = my[matched_y]
        if int(xs.min()) < 0 or int(xs.max()) >= matching.n_x:
            raise InvariantViolation("mate_y points outside the X vertex range")
        bad = matched_y[mx[xs] != matched_y]
        if bad.size:
            y = int(bad[0])
            raise InvariantViolation(
                f"mate asymmetry: mate_y[{y}]={int(my[y])} but "
                f"mate_x[{int(my[y])}]={int(mx[my[y]])}"
            )


def check_tree_disjointness(
    graph: BipartiteCSR, state: ForestState, matching: Matching
) -> None:
    """Visited Y vertices belong to exactly one well-formed tree.

    The single ``parent``/``root_y`` arrays can only *represent* one tree
    per vertex; what a lost atomic claim actually corrupts is agreement
    between the pointers (e.g. ``parent`` written by one winner and
    ``root_y`` by the other), which is what this check catches.
    """
    unrooted = np.flatnonzero((state.visited == 0) & (state.root_y != UNMATCHED))
    if unrooted.size:
        y = int(unrooted[0])
        raise InvariantViolation(
            f"unvisited y={y} still carries tree root {int(state.root_y[y])}"
        )
    for y in np.flatnonzero(state.visited != 0):
        y = int(y)
        x = int(state.parent[y])
        if x == UNMATCHED:
            raise InvariantViolation(f"visited y={y} has no parent")
        if not graph.has_edge(x, y):
            raise InvariantViolation(f"parent edge ({x}, {y}) is not in the graph")
        if state.root_y[y] == UNMATCHED:
            raise InvariantViolation(f"visited y={y} has no root")
        if state.root_x[x] != state.root_y[y]:
            raise InvariantViolation(
                f"tree mismatch at claimed y={y}: parent x={x} lies in tree "
                f"{int(state.root_x[x])} but y lies in tree {int(state.root_y[y])}"
            )
        root = int(state.root_y[y])
        if matching.mate_x[root] != UNMATCHED and state.leaf[root] == UNMATCHED:
            raise InvariantViolation(
                f"tree root {root} is matched but its tree is not renewable"
            )


def check_alternating_paths(
    graph: BipartiteCSR, state: ForestState, matching: Matching
) -> None:
    """Each live root's ``leaf`` reaches the root on an alternating path."""
    n_x = state.n_x
    live_roots = np.flatnonzero(
        (state.root_x == np.arange(n_x)) & (state.leaf != UNMATCHED)
    )
    for x0 in live_roots:
        x0 = int(x0)
        y0 = int(state.leaf[x0])
        if not state.visited[y0] or state.root_y[y0] != x0:
            continue  # stale pointer into a torn-down tree; harmless
        if matching.mate_y[y0] != UNMATCHED:
            raise InvariantViolation(
                f"leaf[{x0}]={y0} is matched; an augmenting path must end unmatched"
            )
        seen: set[int] = set()
        y = y0
        while True:
            if y in seen:
                raise InvariantViolation(
                    f"augmenting path from leaf[{x0}]={y0} revisits y={y} (cycle)"
                )
            seen.add(y)
            x = int(state.parent[y])
            if x == UNMATCHED:
                raise InvariantViolation(f"path vertex y={y} has no parent")
            if not graph.has_edge(x, y):
                raise InvariantViolation(f"path edge ({x}, {y}) is not in the graph")
            if matching.mate_y[y] == x:
                raise InvariantViolation(
                    f"path edge ({x}, {y}) is a matched edge; alternation broken"
                )
            if int(state.root_x[x]) != x0:
                raise InvariantViolation(
                    f"path from leaf[{x0}] crosses into tree {int(state.root_x[x])} at x={x}"
                )
            if x == x0:
                if matching.mate_x[x0] != UNMATCHED:
                    raise InvariantViolation(
                        f"tree root {x0} is matched but still owns an augmenting path"
                    )
                break
            nxt = int(matching.mate_x[x])
            if nxt == UNMATCHED:
                raise InvariantViolation(
                    f"interior path vertex x={x} is unmatched but is not the root {x0}"
                )
            y = nxt


def check_all_invariants(
    graph: BipartiteCSR, state: ForestState, matching: Matching
) -> None:
    """Run every engine invariant; raises on the first violation."""
    check_mate_consistency(graph, matching)
    check_tree_disjointness(graph, state, matching)
    check_alternating_paths(graph, state, matching)


class InvariantChecker:
    """Re-runnable bundle of all invariants over one engine run's state.

    Bound once to the run's (graph, forest state, matching) triple; the
    race monitor calls :meth:`check` after every simulated barrier and
    phase. ``checks_run`` lets tests assert the hook actually fired.
    """

    def __init__(
        self, graph: BipartiteCSR, state: ForestState, matching: Matching
    ) -> None:
        self.graph = graph
        self.state = state
        self.matching = matching
        self.checks_run = 0

    def check(self) -> None:
        self.checks_run += 1
        check_all_invariants(self.graph, self.state, self.matching)
