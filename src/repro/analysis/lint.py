"""Repo-specific AST lint rules for the matching engine.

Generic linters (ruff) cover style and obvious bugs; these rules encode
*project* contracts that no generic tool knows about:

* **REP001 shared-array-mutation** — inside item programs (generator
  functions that run on the interleaved simulator, i.e. any function
  containing ``yield`` under ``core/`` or ``parallel/``), shared numpy
  state may only be mutated through ``AtomicArray`` / ``SharedArray``
  operations (``.store``, ``.compare_and_swap``, ``.fetch_and_*``) —
  never by raw subscript assignment. Raw writes are invisible to the
  dynamic race detector and bypass the simulated memory model.
* **REP002 global-rng** — no global random state anywhere outside
  :mod:`repro.util.rng`: the legacy ``np.random.*`` API (``seed``,
  ``rand``, ``shuffle``, ...) and the stdlib ``random`` module are both
  banned; reproducibility requires every stream to flow through
  ``as_rng``/``spawn_rngs``.
* **REP003 wallclock-cost-model** — cost-model code (the work-span model,
  machine specs, BSP model) must derive simulated time from the model,
  never from the host clock (``time.time``, ``perf_counter``, ...).

A violation can be locally suppressed with a ``# lint: allow-<rule-name>``
comment on the offending line *or* on the first line of the enclosing
statement (so multi-line calls and assignments can carry the comment up
top). Use sparingly, with justification — the ``unused-suppression``
analyzer rule (REP007, :mod:`repro.analysis.phasecheck`) flags comments
that stop suppressing anything.

Run via ``repro-match lint`` (nonzero exit on violations) or
:func:`run_lint`; ``--select``/``--ignore`` filter rules by code or name.
The deeper effect-based rules REP004–REP008 run under
``repro-match analyze``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

DEFAULT_ROOT = Path(__file__).resolve().parents[1]
"""The ``src/repro`` package directory — what ``repro-match lint`` scans."""


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


CheckFn = Callable[[ast.Module], Iterator[Tuple[ast.AST, str]]]


@dataclass(frozen=True)
class LintRule:
    code: str
    name: str
    description: str
    scope: Tuple[str, ...]
    """fnmatch patterns over the package-relative posix path; () = all files."""
    exclude: Tuple[str, ...]
    check: CheckFn

    def applies_to(self, relpath: str) -> bool:
        if any(fnmatch(relpath, pat) for pat in self.exclude):
            return False
        return not self.scope or any(fnmatch(relpath, pat) for pat in self.scope)


# --------------------------------------------------------------------------- #
# REP001: shared arrays are mutated only through AtomicArray/SharedArray ops
# --------------------------------------------------------------------------- #


def _own_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in _own_body_nodes(func)
    )


def _check_shared_mutation(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_generator(func):
            continue
        for node in _own_body_nodes(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    yield target, (
                        f"item program {func.name!r} mutates a shared array by "
                        f"raw subscript assignment; use AtomicArray/SharedArray "
                        f"ops (.store/.compare_and_swap/.fetch_and_*) so the "
                        f"access is visible to the race detector"
                    )


# --------------------------------------------------------------------------- #
# REP002: no global RNG state outside repro.util.rng
# --------------------------------------------------------------------------- #

_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
}


def _attr_chain(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


def _check_global_rng(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node, (
                        "stdlib 'random' uses hidden global state; seed flow "
                        "must go through repro.util.rng"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield node, (
                    "stdlib 'random' uses hidden global state; seed flow "
                    "must go through repro.util.rng"
                )
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if (
                len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in _NP_RANDOM_ALLOWED
            ):
                yield node, (
                    f"np.random.{chain[2]}() mutates numpy's global RNG state; "
                    f"use repro.util.rng.as_rng/spawn_rngs instead"
                )


# --------------------------------------------------------------------------- #
# REP003: no wall clock in cost-model code
# --------------------------------------------------------------------------- #

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("time", "clock"),
}


def _check_wallclock(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    from_time: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                from_time.add(alias.asname or alias.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        bad = (
            (len(chain) == 2 and tuple(chain) in _WALLCLOCK_CALLS)
            or (len(chain) == 3 and chain[0] == "datetime" and chain[2] in ("now", "utcnow"))
            or (len(chain) == 1 and chain[0] in from_time)
        )
        if bad:
            yield node, (
                f"{'.'.join(chain)}() reads the host clock; simulated cost "
                f"must be derived from the machine/cost model, never wall time"
            )


# --------------------------------------------------------------------------- #
# registry + runner
# --------------------------------------------------------------------------- #

RULES: Tuple[LintRule, ...] = (
    LintRule(
        code="REP001",
        name="shared-array-mutation",
        description="item programs mutate shared arrays only via AtomicArray/SharedArray ops",
        scope=("core/*.py", "parallel/*.py"),
        exclude=(),
        check=_check_shared_mutation,
    ),
    LintRule(
        code="REP002",
        name="global-rng",
        description="no global random state outside repro.util.rng",
        scope=(),
        exclude=("util/rng.py",),
        check=_check_global_rng,
    ),
    LintRule(
        code="REP003",
        name="wallclock-cost-model",
        description="cost-model code never reads the host clock",
        scope=(
            "parallel/cost_model.py",
            "parallel/machine.py",
            "distributed/bsp.py",
        ),
        exclude=(),
        check=_check_wallclock,
    ),
)


def filter_rules(
    rules: Sequence[LintRule],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[LintRule, ...]:
    """Keep rules matching ``select`` (codes or names), drop ``ignore``.

    Raises ValueError for a key that names no rule — a misspelled
    ``--select REP01`` should fail loudly, not silently lint nothing.
    """

    def norm(keys: Optional[Iterable[str]]) -> Dict[str, str]:
        if keys is None:
            return {}
        return {k.strip().upper(): k for k in keys}

    known = {r.code.upper() for r in rules} | {r.name.upper() for r in rules}
    sel, ign = norm(select), norm(ignore)
    unknown = [orig for key, orig in {**sel, **ign}.items() if key not in known]
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")

    def matches(rule: LintRule, keys: Dict[str, str]) -> bool:
        return rule.code.upper() in keys or rule.name.upper() in keys

    return tuple(
        r
        for r in rules
        if (not sel or matches(r, sel)) and not matches(r, ign)
    )


def suppression_lines(tree: ast.Module, line: int) -> Set[int]:
    """Lines where an allow-comment counts for a violation at ``line``.

    The violation's own line, plus the first line of the innermost
    statement spanning it — so a suppression on the first line of a
    multi-line call/assignment is honored.
    """
    candidates = {line}
    best: Optional[Tuple[int, int]] = None
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if node.lineno <= line <= end:
            span = (node.lineno, end)
            if best is None or (span[0] >= best[0] and span[1] <= best[1]):
                best = span
    if best is not None:
        candidates.add(best[0])
    return candidates


def suppressed_at(
    source_lines: Sequence[str], candidates: Set[int], rule_name: str
) -> Optional[int]:
    """The line carrying an active ``allow-<rule_name>`` comment, if any."""
    for ln in sorted(candidates):
        if 1 <= ln <= len(source_lines):
            if f"lint: allow-{rule_name}" in source_lines[ln - 1]:
                return ln
    return None


def lint_file(
    path: Path,
    relpath: str,
    rules: Sequence[LintRule] = RULES,
    used_suppressions: Optional[Set[Tuple[str, int]]] = None,
) -> List[LintViolation]:
    """Lint one file; ``relpath`` decides which rules apply.

    ``used_suppressions``, when given, collects ``(relpath, comment_line)``
    for every allow-comment that actually masked a violation — the
    unused-suppression rule subtracts these from the comments it finds.
    """
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintViolation(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="REP000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    violations: List[LintViolation] = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for node, message in rule.check(tree):
            line = getattr(node, "lineno", 1)
            hit = suppressed_at(lines, suppression_lines(tree, line), rule.name)
            if hit is not None:
                if used_suppressions is not None:
                    used_suppressions.add((relpath, hit))
                continue
            violations.append(
                LintViolation(
                    path=str(path),
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    rule=f"{rule.code} ({rule.name})",
                    message=message,
                )
            )
    return violations


def run_lint(
    root: Path | str = DEFAULT_ROOT,
    rules: Sequence[LintRule] = RULES,
    used_suppressions: Optional[Set[Tuple[str, int]]] = None,
) -> List[LintViolation]:
    """Lint every ``*.py`` under ``root`` (a package-shaped directory).

    Rule scopes match against paths relative to ``root``, so a fixture
    tree mimicking the package layout (``<root>/core/foo.py``) exercises
    the same scoping as the real ``src/repro``.
    """
    root = Path(root)
    if root.is_file():
        return lint_file(root, root.name, rules, used_suppressions)
    violations: List[LintViolation] = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        violations.extend(lint_file(path, relpath, rules, used_suppressions))
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))


def summarize(violations: Sequence[LintViolation]) -> str:
    """One-line per-rule tally, e.g. ``3 violations (REP001 x2, REP004 x1)``."""
    if not violations:
        return "0 violations"
    counts: dict[str, int] = {}
    for v in violations:
        code = v.rule.split(" ")[0]
        counts[code] = counts.get(code, 0) + 1
    parts = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
    noun = "violation" if len(violations) == 1 else "violations"
    return f"{len(violations)} {noun} ({parts})"
