"""Prepared-graph model and the builders the cache wraps.

A *prepared graph* is everything the engines need to start matching
without touching the ingest pipeline again: the validated CSR (both
orientations), the degree vectors, and — per initialiser seed — the
Karp-Sipser warm-start matching the experiment suite begins from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.graph.csr import BipartiteCSR

PREPARED_ARRAYS = ("x_ptr", "x_adj", "y_ptr", "y_adj", "deg_x", "deg_y")
"""Array names persisted for every cache entry, in meta.json order."""

LAYOUT_ARRAYS = PREPARED_ARRAYS + ("x_perm", "y_perm")
"""Array names persisted for derived layout entries: the permuted CSR
plus the permutation pair needed to map matchings back to the parent
graph's numbering."""


@dataclass
class PreparedGraph:
    """One prepared graph, whether freshly built or cache-loaded."""

    graph: BipartiteCSR
    key: str
    from_cache: bool
    """True iff this was a cache hit (the build step was skipped)."""
    source: str = ""
    """Human-readable provenance (``suite:rmat scale=1.0`` or a file path)."""
    entry_dir: Path | None = None
    """Backing cache entry, when the graph went through a store."""
    warm_seeds: tuple[int, ...] = field(default_factory=tuple)
    """Initialiser seeds with a persisted Karp-Sipser warm start."""
    reorder_plan: "object | None" = None
    """:class:`repro.graph.reorder.ReorderPlan` when ``graph`` is a derived
    reordered layout (its matchings live in permuted coordinates and must
    be mapped back through this plan); ``None`` for original layouts."""


def build_suite_graph(name: str, scale: float) -> BipartiteCSR:
    """Build one experiment-suite graph (the cache-miss path)."""
    from repro.bench.suite import get_suite_graph

    return get_suite_graph(name, scale=scale).graph


def build_graph_file(path: Union[str, Path], fmt: str) -> BipartiteCSR:
    """Read an on-disk graph by format name (the cache-miss path).

    Mirrors the batch service's reader table, including suffix-based
    ``auto`` resolution, so cached and uncached loads agree bit-for-bit.
    """
    from repro.service.jobs import _read_graph_file

    graph = _read_graph_file(Path(path), fmt)
    # SNAP reads may return a LabelledGraph; the cache stores the graph only.
    return getattr(graph, "graph", graph)


def resolve_format(path: Union[str, Path], fmt: str) -> str:
    """Resolve ``auto`` to a concrete format name (it participates in the
    cache key, so two byte-identical files read by different parsers get
    distinct entries)."""
    if fmt != "auto":
        return fmt
    suffix = Path(path).suffix.lstrip(".").lower()
    return {
        "mtx": "mtx", "gr": "dimacs", "dimacs": "dimacs", "max": "dimacs",
        "txt": "snap", "snap": "snap", "edges": "snap", "npz": "npz",
    }.get(suffix, "mtx")


def warm_start_matching(graph: BipartiteCSR, seed: int):
    """The suite's Karp-Sipser-parallel warm start (see
    :func:`repro.bench.runner.suite_initializer`)."""
    from repro.matching.karp_sipser_parallel import karp_sipser_parallel

    return karp_sipser_parallel(graph, seed=seed, max_degree_one_rounds=2).matching
