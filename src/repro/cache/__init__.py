"""Content-addressed graph-preparation cache.

Building an experiment graph — generator run or file parse, CSR
construction in both orientations, degree vectors, Karp-Sipser warm start
— costs far more than matching on it at bench scales. This package makes
preparation a content-addressed, memory-mapped load: entries are keyed by
SHA-256 of the raw input + format + builder version
(:mod:`repro.cache.keys`), stored one directory per entry with per-array
``.npy`` files and checksummed metadata (:mod:`repro.cache.store`), and
capped by LRU eviction.

Wired into ``repro-match run/trace/batch/bench-kernels`` via
``--cache-dir`` and managed with ``repro-match cache {warm,ls,clear,verify}``.
"""

from repro.cache.keys import BUILDER_VERSION, file_key, spec_key
from repro.cache.prepare import PREPARED_ARRAYS, PreparedGraph
from repro.cache.store import DEFAULT_MAX_BYTES, GraphCache

__all__ = [
    "BUILDER_VERSION",
    "DEFAULT_MAX_BYTES",
    "GraphCache",
    "PREPARED_ARRAYS",
    "PreparedGraph",
    "file_key",
    "spec_key",
]
