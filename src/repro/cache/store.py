"""Content-addressed on-disk store of prepared graphs with LRU eviction.

Layout (one directory per entry, fanned out by key prefix)::

    <root>/index.json                      LRU bookkeeping (seq per key)
    <root>/<key[:2]>/<key>/meta.json       provenance + per-file checksums
    <root>/<key[:2]>/<key>/x_ptr.npy       CSR + degree arrays (one file
    <root>/<key[:2]>/<key>/...             each, so loads memory-map)
    <root>/<key[:2]>/<key>/ks_<seed>.npz   Karp-Sipser warm start per seed

Design points:

* **Memory-mapped loads.** Every array is its own ``.npy``, opened with
  ``np.load(..., mmap_mode="r")``; a warm ``run`` touches only the pages
  the traversal actually reads. Load-time integrity checks are therefore
  *structural* (header fields, file sizes, shapes) — full SHA-256
  verification would read every byte and defeat the mapping, so it lives
  in the explicit :meth:`GraphCache.verify` pass (``repro-match cache
  verify``).
* **Atomicity.** Entries are built in a temp directory and ``os.replace``d
  into place; the index is rewritten via temp file + rename. A crash
  leaves either the old state or the new one, never a torn entry.
* **Corruption = miss.** Any integrity failure during lookup deletes the
  entry and reports a miss; the caller rebuilds from source and re-stores.
* **LRU cap.** ``max_bytes`` bounds the store; every hit or store bumps
  the entry's monotonic ``seq`` and eviction removes lowest-``seq``
  entries until the total fits.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

import numpy as np

from repro.cache.keys import BUILDER_VERSION, file_key, hash_file, layout_key, spec_key
from repro.cache.prepare import (
    LAYOUT_ARRAYS,
    PREPARED_ARRAYS,
    PreparedGraph,
    build_graph_file,
    build_suite_graph,
    resolve_format,
    warm_start_matching,
)
from repro.errors import CacheCorruptionError, ReproError
from repro.graph.csr import BipartiteCSR
from repro.graph.reorder import (
    REORDER_STRATEGIES,
    ReorderPlan,
    apply_plan,
    plan_reorder,
)
from repro.matching.base import Matching

DEFAULT_MAX_BYTES = 512 * 1024 * 1024
_INDEX_VERSION = 1
_META_VERSION = 1


class GraphCache:
    """Content-addressed graph-preparation cache (see module docstring)."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        telemetry: Optional[object] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.telemetry = telemetry

    # ------------------------------------------------------------------ #
    # public prepare API
    # ------------------------------------------------------------------ #

    def prepare_suite(self, name: str, scale: float) -> PreparedGraph:
        """Prepared experiment-suite graph (build-on-miss, store, load)."""
        return self.prepare_spec(
            "suite",
            name,
            {"scale": float(scale)},
            lambda: build_suite_graph(name, scale),
            source=f"suite:{name} scale={scale}",
        )

    def prepare_file(self, path: Union[str, Path], fmt: str = "auto") -> PreparedGraph:
        """Prepared on-disk graph, keyed by the file's raw bytes + format."""
        fmt = resolve_format(path, fmt)
        key = file_key(path, fmt)
        return self._prepare(
            key,
            lambda: build_graph_file(path, fmt),
            kind="file",
            fmt=fmt,
            source=str(path),
        )

    def prepare_spec(
        self,
        kind: str,
        name: str,
        params: Mapping[str, Any],
        builder: Callable[[], BipartiteCSR],
        *,
        source: str = "",
    ) -> PreparedGraph:
        """Prepared graph for any deterministic generator spec."""
        key = spec_key(kind, name, params)
        return self._prepare(
            key, builder, kind=kind, fmt="generator",
            source=source or f"{kind}:{name} {dict(params)}",
        )

    def prepare_layout(
        self,
        prepared: PreparedGraph,
        strategy: str,
        *,
        telemetry: Optional[object] = None,
    ) -> PreparedGraph:
        """Derived reordered layout of ``prepared``, cached per strategy.

        Keyed by ``layout_key(prepared.key, strategy)``: the permuted CSR
        plus its ``(x_perm, y_perm)`` pair, stored as a first-class entry
        so warm runs skip the ordering computation entirely (a hit counts
        ``repro_reorder_layout_hits_total``; only a miss plans and counts
        ``repro_reorder_plans_total``). Corruption in a layout entry is a
        miss for that strategy alone — the parent entry and sibling
        strategies are untouched, and the layout is rebuilt from the
        parent graph already in hand.
        """
        if strategy not in REORDER_STRATEGIES:
            raise ReproError(
                f"unknown reorder strategy {strategy!r} "
                f"(expected one of {REORDER_STRATEGIES})"
            )
        tel = telemetry if telemetry is not None else self.telemetry
        key = layout_key(prepared.key, strategy)
        hit = self._lookup(key)
        if hit is not None and hit.reorder_plan is not None:
            hit.source = prepared.source or hit.source
            if tel is not None:
                tel.count_reorder_cached(strategy)
            return hit
        if tel is not None:
            with tel.step("reorder_plan"):
                plan = plan_reorder(prepared.graph, strategy)
            tel.count_reorder_plan(strategy)
            with tel.step("reorder_apply"):
                permuted = apply_plan(prepared.graph, plan)
        else:
            plan = plan_reorder(prepared.graph, strategy)
            permuted = apply_plan(prepared.graph, plan)
        self._store(
            key,
            permuted,
            kind="layout",
            fmt="derived",
            source=prepared.source,
            extra_arrays={"x_perm": plan.x_perm, "y_perm": plan.y_perm},
            extra_meta={"strategy": strategy, "parent": prepared.key},
        )
        # Serve the stored entry (memory-mapped arrays); fall back to the
        # in-memory layout if it was evicted immediately.
        stored = self._lookup(key)
        if stored is not None and stored.reorder_plan is not None:
            stored.source = prepared.source or stored.source
            stored.from_cache = False
            return stored
        return PreparedGraph(
            graph=permuted,
            key=key,
            from_cache=False,
            source=prepared.source,
            reorder_plan=plan,
        )

    def load_entry(self, key: str) -> Optional[PreparedGraph]:
        """Load an existing entry by its content key, or ``None``.

        The lookup-by-key counterpart of the ``prepare_*`` builders, for
        callers that persisted a key instead of a spec — the online
        daemon's ``snapshot``/``load`` round trip restores sessions this
        way. Integrity failures behave like any lookup: the entry is
        removed and the call reports a miss.
        """
        if not key or any(c not in "0123456789abcdef" for c in key):
            return None
        return self._lookup(key)

    def warm_start(self, prepared: PreparedGraph, seed: int) -> Matching:
        """Karp-Sipser warm start for ``prepared``, cached per seed.

        Loaded matchings are fresh writable arrays (the engines flip them
        in place), so sharing an entry across runs is safe.
        """
        from repro.graph.serialize import load_matching, save_matching

        if prepared.entry_dir is None or not prepared.entry_dir.is_dir():
            return warm_start_matching(prepared.graph, seed)
        path = prepared.entry_dir / f"ks_{int(seed)}.npz"
        if path.is_file():
            try:
                matching = load_matching(path)
                if (
                    matching.mate_x.shape[0] == prepared.graph.n_x
                    and matching.mate_y.shape[0] == prepared.graph.n_y
                ):
                    return matching
            except Exception:  # noqa: BLE001 - corrupt warm start → rebuild it
                pass
        matching = warm_start_matching(prepared.graph, seed)
        save_matching(matching, path)
        self._touch(prepared.key, bytes_delta=self._entry_bytes(prepared.entry_dir), absolute=True)
        self._evict(protect={prepared.key})
        return matching

    # ------------------------------------------------------------------ #
    # store inspection / maintenance (the `repro-match cache` verbs)
    # ------------------------------------------------------------------ #

    @property
    def total_bytes(self) -> int:
        index = self._load_index()
        return sum(int(e["bytes"]) for e in index["entries"].values())

    def entries(self) -> list[dict]:
        """All entries, least-recently-used first."""
        index = self._load_index()
        out = []
        for key, info in sorted(index["entries"].items(), key=lambda kv: kv[1]["seq"]):
            row = {"key": key, "bytes": int(info["bytes"]), "seq": int(info["seq"])}
            try:
                meta = self._read_meta(key)
                row.update(
                    kind=meta.get("kind", "?"),
                    source=meta.get("source", ""),
                    n_x=meta.get("n_x"),
                    n_y=meta.get("n_y"),
                    nnz=meta.get("nnz"),
                    warm_seeds=sorted(
                        int(p.stem.split("_", 1)[1])
                        for p in self._entry_dir(key).glob("ks_*.npz")
                    ),
                )
                if meta.get("kind") == "layout":
                    row.update(
                        strategy=meta.get("strategy", "?"),
                        parent=meta.get("parent", ""),
                    )
            except CacheCorruptionError as exc:
                row["corrupt"] = str(exc)
            out.append(row)
        return out

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        index = self._load_index()
        count = 0
        for key in list(index["entries"]):
            self._remove_entry(key)
            count += 1
        return count

    def verify(self) -> list[tuple[str, str]]:
        """Full integrity pass: SHA-256 every array file against meta.json.

        Returns ``(key, problem)`` pairs; an empty list means the store is
        bit-for-bit intact. This is the deep counterpart of the structural
        checks lookups perform.
        """
        problems: list[tuple[str, str]] = []
        index = self._load_index()
        for key in sorted(index["entries"]):
            try:
                meta = self._read_meta(key)
                entry = self._entry_dir(key)
                for name, info in meta["arrays"].items():
                    path = entry / f"{name}.npy"
                    if not path.is_file():
                        raise CacheCorruptionError(f"{name}.npy missing")
                    digest = hash_file(path)
                    if digest != info["sha256"]:
                        raise CacheCorruptionError(
                            f"{name}.npy checksum mismatch "
                            f"(stored {info['sha256'][:12]}, actual {digest[:12]})"
                        )
            except CacheCorruptionError as exc:
                problems.append((key, str(exc)))
        return problems

    # ------------------------------------------------------------------ #
    # core prepare path
    # ------------------------------------------------------------------ #

    def _prepare(
        self,
        key: str,
        builder: Callable[[], BipartiteCSR],
        *,
        kind: str,
        fmt: str,
        source: str,
    ) -> PreparedGraph:
        tel = self.telemetry
        prepared = self._lookup(key)
        if prepared is not None:
            prepared.source = source
            if tel is not None:
                tel.count_cache(True, self.total_bytes)
            return prepared
        if tel is not None:
            with tel.step("build"):
                graph = builder()
        else:
            graph = builder()
        self._store(key, graph, kind=kind, fmt=fmt, source=source)
        if tel is not None:
            tel.count_cache(False, self.total_bytes)
        # Serve the stored entry so hot arrays are the memory-mapped ones
        # (identical bytes — they were just written from this graph).
        prepared = self._lookup(key)
        if prepared is not None:
            prepared.source = source
            prepared.from_cache = False  # this call built it: a miss
            return prepared
        # Entry evicted immediately (max_bytes smaller than the graph):
        # fall back to the freshly built object.
        return PreparedGraph(graph=graph, key=key, from_cache=False, source=source)

    def _lookup(self, key: str) -> Optional[PreparedGraph]:
        entry = self._entry_dir(key)
        if not entry.is_dir():
            return None
        try:
            meta = self._read_meta(key)
            is_layout = meta.get("kind") == "layout"
            arrays = {}
            for name in LAYOUT_ARRAYS if is_layout else PREPARED_ARRAYS:
                info = meta["arrays"].get(name)
                path = entry / f"{name}.npy"
                if info is None or not path.is_file():
                    raise CacheCorruptionError(f"{name}.npy missing from entry")
                if path.stat().st_size != int(info["bytes"]):
                    raise CacheCorruptionError(
                        f"{name}.npy truncated or resized "
                        f"({path.stat().st_size} != {info['bytes']} bytes)"
                    )
                try:
                    arrays[name] = np.load(path, mmap_mode="r", allow_pickle=False)
                except Exception as exc:  # noqa: BLE001 - bad npy header
                    raise CacheCorruptionError(f"{name}.npy unreadable: {exc}") from exc
            n_x, n_y, nnz = int(meta["n_x"]), int(meta["n_y"]), int(meta["nnz"])
            if (
                arrays["x_ptr"].shape != (n_x + 1,)
                or arrays["y_ptr"].shape != (n_y + 1,)
                or arrays["x_adj"].shape != (nnz,)
                or arrays["y_adj"].shape != (nnz,)
                or arrays["deg_x"].shape != (n_x,)
                or arrays["deg_y"].shape != (n_y,)
            ):
                raise CacheCorruptionError("array shapes disagree with meta.json")
            plan = None
            if is_layout:
                strategy = meta.get("strategy", "")
                if strategy not in REORDER_STRATEGIES:
                    raise CacheCorruptionError(
                        f"layout entry has unknown strategy {strategy!r}"
                    )
                if (
                    arrays["x_perm"].shape != (n_x,)
                    or arrays["y_perm"].shape != (n_y,)
                ):
                    raise CacheCorruptionError(
                        "layout permutation shapes disagree with meta.json"
                    )
                plan = ReorderPlan(strategy, arrays["x_perm"], arrays["y_perm"])
        except CacheCorruptionError:
            # Fallback-to-rebuild: a broken entry must never mask the source.
            self._remove_entry(key)
            return None
        graph = BipartiteCSR(
            n_x, n_y,
            arrays["x_ptr"], arrays["x_adj"],
            arrays["y_ptr"], arrays["y_adj"],
            validate=False,
        )
        graph._deg_x = arrays["deg_x"]
        graph._deg_y = arrays["deg_y"]
        self._touch(key)
        return PreparedGraph(
            graph=graph,
            key=key,
            from_cache=True,
            source=str(meta.get("source", "")),
            entry_dir=entry,
            warm_seeds=tuple(
                sorted(int(p.stem.split("_", 1)[1]) for p in entry.glob("ks_*.npz"))
            ),
            reorder_plan=plan,
        )

    def _store(
        self,
        key: str,
        graph: BipartiteCSR,
        *,
        kind: str,
        fmt: str,
        source: str,
        extra_arrays: Optional[Mapping[str, np.ndarray]] = None,
        extra_meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        tmp = self.root / f".tmp-{key[:16]}-{os.getpid()}"
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir(parents=True)
        try:
            arrays = {
                "x_ptr": graph.x_ptr, "x_adj": graph.x_adj,
                "y_ptr": graph.y_ptr, "y_adj": graph.y_adj,
                "deg_x": graph.deg_x, "deg_y": graph.deg_y,
            }
            if extra_arrays:
                arrays.update(extra_arrays)
            meta_arrays = {}
            for name, arr in arrays.items():
                path = tmp / f"{name}.npy"
                np.save(path, arr)
                meta_arrays[name] = {
                    "sha256": hash_file(path),
                    "bytes": path.stat().st_size,
                }
            meta = {
                "version": _META_VERSION,
                "key": key,
                "kind": kind,
                "format": fmt,
                "source": source,
                "builder_version": BUILDER_VERSION,
                "n_x": int(graph.n_x),
                "n_y": int(graph.n_y),
                "nnz": int(graph.nnz),
                "arrays": meta_arrays,
            }
            if extra_meta:
                meta.update(extra_meta)
            meta_path = tmp / "meta.json"
            meta_path.write_text(json.dumps(meta, indent=2), encoding="utf-8")
            final = self._entry_dir(key)
            final.parent.mkdir(parents=True, exist_ok=True)
            if final.exists():
                shutil.rmtree(final)
            os.replace(tmp, final)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self._touch(key, bytes_delta=self._entry_bytes(self._entry_dir(key)), absolute=True)
        self._evict(protect={key})

    # ------------------------------------------------------------------ #
    # index + eviction
    # ------------------------------------------------------------------ #

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def _entry_bytes(self, entry: Path) -> int:
        return sum(p.stat().st_size for p in entry.iterdir() if p.is_file())

    def _read_meta(self, key: str) -> dict:
        path = self._entry_dir(key) / "meta.json"
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CacheCorruptionError(f"meta.json unreadable: {exc}") from exc
        required = {"version", "key", "arrays", "n_x", "n_y", "nnz", "builder_version"}
        if not required.issubset(meta):
            raise CacheCorruptionError(
                f"meta.json missing fields {sorted(required - set(meta))}"
            )
        if meta["key"] != key:
            raise CacheCorruptionError(
                f"entry directory/key mismatch ({meta['key'][:12]} != {key[:12]})"
            )
        return meta

    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict:
        path = self._index_path()
        try:
            index = json.loads(path.read_text(encoding="utf-8"))
            if (
                index.get("version") == _INDEX_VERSION
                and isinstance(index.get("entries"), dict)
            ):
                return index
        except (OSError, ValueError):
            pass
        return self._rebuild_index()

    def _rebuild_index(self) -> dict:
        """Reconstruct LRU bookkeeping by scanning entry directories.

        Recency order is lost (keys are re-sequenced in scan order); sizes
        and membership are re-derived from disk, so a deleted or hand-edited
        index never strands entries.
        """
        entries: dict[str, dict] = {}
        seq = 0
        for prefix in sorted(self.root.iterdir()) if self.root.is_dir() else []:
            if not prefix.is_dir() or len(prefix.name) != 2:
                continue
            for entry in sorted(prefix.iterdir()):
                if entry.is_dir() and (entry / "meta.json").is_file():
                    entries[entry.name] = {
                        "bytes": self._entry_bytes(entry),
                        "seq": seq,
                    }
                    seq += 1
        index = {"version": _INDEX_VERSION, "next_seq": seq, "entries": entries}
        self._save_index(index)
        return index

    def _save_index(self, index: dict) -> None:
        path = self._index_path()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(index, indent=0), encoding="utf-8")
        os.replace(tmp, path)

    def _touch(
        self, key: str, *, bytes_delta: Optional[int] = None, absolute: bool = False
    ) -> None:
        """Bump ``key`` to most-recently-used; optionally set its size."""
        index = self._load_index()
        info = index["entries"].setdefault(key, {"bytes": 0, "seq": 0})
        if bytes_delta is not None:
            info["bytes"] = int(bytes_delta) if absolute else info["bytes"] + int(bytes_delta)
        info["seq"] = int(index["next_seq"])
        index["next_seq"] = int(index["next_seq"]) + 1
        self._save_index(index)

    def _evict(self, protect: Optional[set] = None) -> list[str]:
        """Remove least-recently-used entries until the store fits."""
        protect = protect or set()
        index = self._load_index()
        evicted: list[str] = []
        total = sum(int(e["bytes"]) for e in index["entries"].values())
        victims = sorted(index["entries"].items(), key=lambda kv: kv[1]["seq"])
        for key, info in victims:
            if total <= self.max_bytes:
                break
            if key in protect:
                continue
            self._remove_entry(key)
            total -= int(info["bytes"])
            evicted.append(key)
        # ``max_bytes`` is an invariant, not a hint: when the protected
        # (just-stored) entry alone exceeds the budget it goes too, and the
        # caller serves the freshly built graph without a backing entry.
        if total > self.max_bytes:
            for key, info in victims:
                if total <= self.max_bytes:
                    break
                if key not in evicted:
                    self._remove_entry(key)
                    total -= int(info["bytes"])
                    evicted.append(key)
        return evicted

    def _remove_entry(self, key: str) -> None:
        shutil.rmtree(self._entry_dir(key), ignore_errors=True)
        index = self._load_index()
        if key in index["entries"]:
            del index["entries"][key]
            self._save_index(index)
