"""Content-addressed cache keys.

A cache key is the SHA-256 of everything that determines the prepared
graph bit-for-bit: the raw input (file bytes, or the canonical parameter
encoding of a deterministic generator spec), the input format, and the
builder version. Any change to the ingest pipeline that alters what gets
materialised must bump :data:`BUILDER_VERSION`; old entries then simply
stop being addressed (and age out via LRU eviction) instead of being
served stale.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Union

BUILDER_VERSION = 1
"""Version of the graph-preparation pipeline baked into every key.

Bump when the prepared representation changes (CSR layout, degree arrays,
warm-start semantics) so previously cached entries are never reused.
"""

_CHUNK = 1 << 20


def _digest(parts: list[bytes]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
        h.update(b"\x00")
    return h.hexdigest()


def spec_key(kind: str, name: str, params: Mapping[str, Any]) -> str:
    """Key for a deterministic generator spec (suite or bench graph).

    The generator parameters *are* the raw input: the builders are pure
    functions of them, so hashing the canonical JSON encoding of the spec
    is content addressing one level up from the bytes.
    """
    canon = json.dumps(dict(params), sort_keys=True, separators=(",", ":"))
    return _digest(
        [
            b"spec",
            kind.encode("utf-8"),
            name.encode("utf-8"),
            canon.encode("utf-8"),
            f"builder=v{BUILDER_VERSION}".encode("utf-8"),
        ]
    )


def layout_key(parent_key: str, strategy: str) -> str:
    """Key for a derived reordered layout of an already-keyed graph.

    A layout entry stores the permuted CSR plus the ``(x_perm, y_perm)``
    pair that produced it, derived deterministically from the parent
    entry's graph by one reordering strategy. The parent key already
    folds in the raw input and :data:`BUILDER_VERSION`; the layout key
    adds the strategy name and the reordering pipeline version
    (:data:`repro.graph.reorder.REORDER_VERSION`), so a change to any
    strategy's ordering rule orphans stale layouts without touching the
    parent entries they were derived from.
    """
    from repro.graph.reorder import REORDER_VERSION

    return _digest(
        [
            b"layout",
            parent_key.encode("utf-8"),
            strategy.encode("utf-8"),
            f"reorder=v{REORDER_VERSION}".encode("utf-8"),
        ]
    )


def file_key(path: Union[str, Path], fmt: str) -> str:
    """Key for an on-disk graph file: raw bytes + format + builder version.

    The format participates because one byte stream parses differently
    under different readers (e.g. a ``.txt`` edge list read as SNAP vs
    DIMACS), and the cache must never conflate those graphs.
    """
    h = hashlib.sha256()
    h.update(b"file\x00")
    h.update(fmt.encode("utf-8"))
    h.update(b"\x00")
    h.update(f"builder=v{BUILDER_VERSION}".encode("utf-8"))
    h.update(b"\x00")
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()


def hash_file(path: Union[str, Path]) -> str:
    """Streaming SHA-256 of a file's bytes (entry integrity checksums)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            h.update(chunk)
    return h.hexdigest()
