"""Solving a linear system through its block triangular form.

The paper's opening motivation: "Once the BTF is obtained, in circuit
simulations, sparse linear systems of equations can be solved faster". This
module closes that loop: given a numerically-valued square sparse matrix
whose pattern has a perfect matching, it computes the BTF permutation via
maximum matching and solves ``A x = b`` by block back-substitution — each
diagonal block solved densely, off-block contributions propagated — which
touches only ``O(sum block^3)`` work instead of ``O(n^3)``.
"""

from __future__ import annotations

import numpy as np

from repro.apps.btf import BlockTriangularForm, block_triangular_form
from repro.errors import ReproError
from repro.graph.builder import from_scipy_sparse
from repro.matching.base import Matching


def solve_btf(matrix, b: np.ndarray, matching: Matching | None = None) -> np.ndarray:
    """Solve ``A x = b`` via block triangular form.

    ``matrix`` is any scipy.sparse square matrix with structurally full
    rank (its pattern admits a perfect matching) and numerically
    non-singular diagonal blocks. ``matching`` may supply a precomputed
    maximum matching of the pattern; otherwise MS-BFS-Graft computes one.

    Returns ``x`` with ``A @ x = b`` (up to floating-point error). Raises
    :class:`~repro.errors.ReproError` if the pattern is structurally
    singular (no perfect matching).
    """
    import scipy.sparse as sp

    A = sp.csr_matrix(matrix, dtype=np.float64)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ReproError(f"solve_btf needs a square matrix, got {A.shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ReproError(f"b has shape {b.shape}, expected ({n},)")

    graph = from_scipy_sparse(A)
    if matching is None:
        from repro.core.driver import ms_bfs_graft

        matching = ms_bfs_graft(graph, emit_trace=False).matching
    if matching.cardinality != n:
        raise ReproError(
            f"matrix is structurally singular: sprank {matching.cardinality} < {n}"
        )
    btf = block_triangular_form(graph, matching)
    return _block_back_substitute(A, b, btf)


def _block_back_substitute(A, b: np.ndarray, btf: BlockTriangularForm) -> np.ndarray:
    """Back-substitution over the BTF's diagonal blocks.

    With rows/columns permuted to block *upper* triangular form, solve the
    last block first and eliminate its contribution from earlier blocks.
    """
    perm = A[btf.row_perm, :][:, btf.col_perm].toarray()
    n = perm.shape[0]
    rhs = b[btf.row_perm].astype(np.float64).copy()
    x_perm = np.zeros(n)
    bounds = btf.block_boundaries
    for bi in range(btf.num_square_blocks - 1, -1, -1):
        lo, hi = int(bounds[bi]), int(bounds[bi + 1])
        block = perm[lo:hi, lo:hi]
        x_perm[lo:hi] = np.linalg.solve(block, rhs[lo:hi])
        if lo > 0:
            rhs[:lo] -= perm[:lo, lo:hi] @ x_perm[lo:hi]
    # Undo the column permutation: x[col_perm[k]] = x_perm[k].
    x = np.zeros(n)
    x[btf.col_perm] = x_perm
    return x
