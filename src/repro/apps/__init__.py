"""Applications built on maximum matching.

The paper's introduction motivates maximum cardinality matching with the
Dulmage-Mendelsohn decomposition: permuting a sparse matrix to block
triangular form (BTF) so that linear solves and structural-rank analyses
can work block by block. This package implements that pipeline on top of
:func:`repro.ms_bfs_graft`:

* :func:`dulmage_mendelsohn` — the coarse DM decomposition of a bipartite
  graph into horizontal / square / vertical parts;
* :func:`block_triangular_form` — row/column permutations bringing a sparse
  matrix to BTF (fine decomposition of the square part via strongly
  connected components);
* :func:`structural_rank` — maximum matching cardinality of the sparsity
  pattern.
"""

from repro.apps.dulmage_mendelsohn import DMDecomposition, dulmage_mendelsohn
from repro.apps.btf import BlockTriangularForm, block_triangular_form, structural_rank
from repro.apps.btf_solve import solve_btf

__all__ = [
    "DMDecomposition",
    "dulmage_mendelsohn",
    "BlockTriangularForm",
    "block_triangular_form",
    "structural_rank",
    "solve_btf",
]
