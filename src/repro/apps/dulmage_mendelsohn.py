"""Coarse Dulmage-Mendelsohn decomposition.

Given a maximum matching M of the bipartite graph of a sparse matrix, the
coarse DM decomposition splits rows (X) and columns (Y) into three parts:

* **horizontal** ``(X_h, Y_h)`` — vertices reachable by M-alternating paths
  from unmatched *columns*; X_h is perfectly matched into Y_h and
  ``|Y_h| > |X_h|`` (underdetermined part);
* **vertical** ``(X_v, Y_v)`` — vertices reachable by alternating paths
  from unmatched *rows*; ``|X_v| > |Y_v|`` (overdetermined part);
* **square** ``(X_s, Y_s)`` — everything else; perfectly matched.

The decomposition is canonical: it does not depend on which maximum
matching is used (a classical result), which our property tests exploit by
computing it from different algorithms' matchings and comparing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import VerificationError
from repro.graph.csr import BipartiteCSR
from repro.matching.base import UNMATCHED, Matching
from repro.matching.verify import is_maximum_matching


@dataclass(frozen=True)
class DMDecomposition:
    """Index arrays of the coarse DM parts (sorted, disjoint, exhaustive)."""

    horizontal_x: np.ndarray
    horizontal_y: np.ndarray
    square_x: np.ndarray
    square_y: np.ndarray
    vertical_x: np.ndarray
    vertical_y: np.ndarray

    def summary(self) -> str:
        return (
            f"DM: horizontal ({self.horizontal_x.size} x {self.horizontal_y.size}), "
            f"square ({self.square_x.size} x {self.square_y.size}), "
            f"vertical ({self.vertical_x.size} x {self.vertical_y.size})"
        )


def dulmage_mendelsohn(graph: BipartiteCSR, matching: Matching) -> DMDecomposition:
    """Coarse DM decomposition from a *maximum* matching.

    Raises :class:`VerificationError` if ``matching`` is not maximum (the
    decomposition is only defined for maximum matchings).
    """
    if not is_maximum_matching(graph, matching):
        raise VerificationError("Dulmage-Mendelsohn needs a maximum matching")

    # Alternating BFS from unmatched columns: free Y --(any edge)--> X
    # --(matched edge)--> Y ...
    reach_h_x = np.zeros(graph.n_x, dtype=bool)
    reach_h_y = np.zeros(graph.n_y, dtype=bool)
    queue: deque[int] = deque()
    for y in matching.unmatched_y():
        reach_h_y[y] = True
        queue.append(int(y))
    while queue:
        y = queue.popleft()
        for x in graph.neighbors_y(y):
            x = int(x)
            if reach_h_x[x]:
                continue
            reach_h_x[x] = True
            mate = int(matching.mate_x[x])
            # x must be matched: an unmatched x adjacent to a free/alternating
            # -reachable y would be an augmenting path, contradicting
            # maximality.
            if mate != UNMATCHED and not reach_h_y[mate]:
                reach_h_y[mate] = True
                queue.append(mate)

    # Alternating BFS from unmatched rows: free X --(any edge)--> Y
    # --(matched edge)--> X ...
    reach_v_x = np.zeros(graph.n_x, dtype=bool)
    reach_v_y = np.zeros(graph.n_y, dtype=bool)
    for x in matching.unmatched_x():
        reach_v_x[x] = True
        queue.append(int(x))
    while queue:
        x = queue.popleft()
        for y in graph.neighbors_x(x):
            y = int(y)
            if reach_v_y[y]:
                continue
            reach_v_y[y] = True
            mate = int(matching.mate_y[y])
            if mate != UNMATCHED and not reach_v_x[mate]:
                reach_v_x[mate] = True
                queue.append(mate)

    if bool(np.any(reach_h_x & reach_v_x)) or bool(np.any(reach_h_y & reach_v_y)):
        raise VerificationError(
            "horizontal and vertical parts overlap — matching was not maximum"
        )
    square_x = ~(reach_h_x | reach_v_x)
    square_y = ~(reach_h_y | reach_v_y)
    return DMDecomposition(
        horizontal_x=np.flatnonzero(reach_h_x),
        horizontal_y=np.flatnonzero(reach_h_y),
        square_x=np.flatnonzero(square_x),
        square_y=np.flatnonzero(square_y),
        vertical_x=np.flatnonzero(reach_v_x),
        vertical_y=np.flatnonzero(reach_v_y),
    )
