"""Block triangular form of sparse matrices.

The full BTF pipeline the paper's introduction describes (circuit
simulation, sparse linear solves): maximum matching → coarse
Dulmage-Mendelsohn → fine decomposition of the square part into strongly
connected components of the matched digraph → row/column permutations that
put the matrix into block (upper) triangular form.

The SCC computation is an iterative Tarjan over the condensed square-part
digraph (column j → column k iff the square part has an entry in row
``mate(j)``, column k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.dulmage_mendelsohn import DMDecomposition, dulmage_mendelsohn
from repro.graph.csr import BipartiteCSR
from repro.matching.base import Matching


@dataclass(frozen=True)
class BlockTriangularForm:
    """Row/column permutations and block structure of a BTF.

    ``row_perm[k]`` is the original row placed at permuted position k (same
    for columns). ``block_boundaries`` delimits the diagonal blocks of the
    square part *within the permuted square region*; ``dm`` carries the
    coarse structure around it.
    """

    row_perm: np.ndarray
    col_perm: np.ndarray
    block_boundaries: np.ndarray
    dm: DMDecomposition

    @property
    def num_square_blocks(self) -> int:
        return max(0, self.block_boundaries.size - 1)


def structural_rank(graph: BipartiteCSR, matching: Matching) -> int:
    """Structural rank = maximum matching cardinality (sprank)."""
    from repro.matching.verify import verify_maximum

    return verify_maximum(graph, matching)


def _square_part_sccs(
    graph: BipartiteCSR, matching: Matching, square_y: np.ndarray
) -> List[List[int]]:
    """SCCs of the square-part digraph, in reverse topological order.

    Vertices are the square columns; arc j -> k iff A[mate(j), k] != 0 with
    k a square column, k != j. Iterative Tarjan.
    """
    n = square_y.size
    col_index = {int(y): i for i, y in enumerate(square_y)}
    adj: List[List[int]] = []
    for y in square_y:
        x = int(matching.mate_y[int(y)])
        row = []
        for k in graph.neighbors_x(x):
            j = col_index.get(int(k))
            if j is not None and int(k) != int(y):
                row.append(j)
        adj.append(row)

    index = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for start in range(n):
        if index[start] != -1:
            continue
        work = [(start, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            for next_pi in range(pi, len(adj[v])):
                w = adj[v][next_pi]
                if index[w] == -1:
                    work[-1] = (v, next_pi + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)
    return sccs


def block_triangular_form(graph: BipartiteCSR, matching: Matching) -> BlockTriangularForm:
    """Permute a (pattern) matrix into block upper triangular form.

    Ordering: horizontal part first, then the square part's SCC blocks in
    topological order, then the vertical part. Within the square part each
    block's rows are the mates of its columns, so the diagonal blocks are
    square with structurally nonzero diagonals.
    """
    dm = dulmage_mendelsohn(graph, matching)
    sccs = _square_part_sccs(graph, matching, dm.square_y)
    # Tarjan emits SCCs in reverse topological order of the condensation;
    # reversing yields a topological order, which makes the permuted square
    # part block *upper* triangular.
    sccs = list(reversed(sccs))

    col_order: List[int] = []
    row_order: List[int] = []
    boundaries = [0]

    # Horizontal part: free + matched columns, matched rows.
    h_cols = list(map(int, dm.horizontal_y))
    # Put matched horizontal columns after their rows' positions: rows are
    # the mates; unmatched columns go first.
    h_cols.sort(key=lambda y: (matching.mate_y[y] != -1, y))
    col_order.extend(h_cols)
    row_order.extend(int(matching.mate_y[y]) for y in h_cols if matching.mate_y[y] != -1)

    square_start = len(col_order)
    for scc in sccs:
        for local in scc:
            y = int(dm.square_y[local])
            col_order.append(y)
            row_order.append(int(matching.mate_y[y]))
        boundaries.append(len(col_order) - square_start)

    # Vertical part: matched rows (with their columns) then free rows.
    v_rows = list(map(int, dm.vertical_x))
    v_rows.sort(key=lambda x: (matching.mate_x[x] == -1, x))
    for x in v_rows:
        y = int(matching.mate_x[x])
        if y != -1:
            col_order.append(y)
        row_order.append(x)

    # Any never-ordered rows/columns (isolated vertices) go at the ends.
    seen_rows = set(row_order)
    row_order.extend(x for x in range(graph.n_x) if x not in seen_rows)
    seen_cols = set(col_order)
    col_order.extend(y for y in range(graph.n_y) if y not in seen_cols)

    return BlockTriangularForm(
        row_perm=np.asarray(row_order, dtype=np.int64),
        col_perm=np.asarray(col_order, dtype=np.int64),
        block_boundaries=np.asarray(boundaries, dtype=np.int64),
        dm=dm,
    )
