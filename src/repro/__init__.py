"""repro — reproduction of "A Parallel Tree Grafting Algorithm for Maximum
Cardinality Matching in Bipartite Graphs" (Azad, Buluç, Pothen, IPDPS 2015).

Quickstart::

    import repro

    graph = repro.graph.rmat_bipartite(scale=14, edge_factor=8, seed=1)
    init = repro.karp_sipser(graph, seed=1).matching
    result = repro.ms_bfs_graft(graph, init)
    print(result.cardinality, result.counters.phases)
    repro.verify_maximum(graph, result.matching)

Subpackages: :mod:`repro.graph` (bipartite CSR substrate, generators, I/O),
:mod:`repro.matching` (initialisers, baseline maximum-matching algorithms,
verification), :mod:`repro.core` (MS-BFS-Graft), :mod:`repro.parallel`
(simulated NUMA machine + cost model), :mod:`repro.instrument` (counters,
rates), :mod:`repro.apps` (Dulmage-Mendelsohn / block triangular form),
:mod:`repro.bench` (experiment harness for every paper table and figure).
"""

from repro import graph
from repro.core.driver import ms_bfs_graft
from repro.errors import ReproError
from repro.matching.base import Matching, MatchResult
from repro.matching.greedy import greedy_matching
from repro.matching.incremental import IncrementalMatcher
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.karp_sipser import karp_sipser
from repro.matching.karp_sipser_parallel import karp_sipser_parallel
from repro.matching.ms_bfs import ms_bfs
from repro.matching.pothen_fan import pothen_fan
from repro.matching.push_relabel import push_relabel
from repro.matching.ss_bfs import ss_bfs
from repro.matching.ss_dfs import ss_dfs
from repro.matching.verify import is_maximum_matching, verify_maximum
from repro.parallel.cost_model import CostModel
from repro.parallel.machine import EDISON, LAPTOP, MIRASOL, MachineSpec

__version__ = "1.0.0"

__all__ = [
    "graph",
    "ms_bfs_graft",
    "ms_bfs",
    "karp_sipser",
    "karp_sipser_parallel",
    "greedy_matching",
    "IncrementalMatcher",
    "ss_bfs",
    "ss_dfs",
    "hopcroft_karp",
    "pothen_fan",
    "push_relabel",
    "Matching",
    "MatchResult",
    "is_maximum_matching",
    "verify_maximum",
    "CostModel",
    "MachineSpec",
    "MIRASOL",
    "EDISON",
    "LAPTOP",
    "ReproError",
    "__version__",
]
